package cluster

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/simnet"
	"github.com/stsl/stsl/internal/tensor"
	"github.com/stsl/stsl/internal/transport"
)

// TestWorkerPoolAllPolicies drives a multi-worker pool through every
// scheduling policy: the full batch budget must be served exactly once
// across the replicas (the session layer still guarantees lock-step per
// client), at least one FedAvg sync barrier must complete, and training
// must produce a real loss. Run with -race: N workers drain one shared
// queue concurrently.
func TestWorkerPoolAllPolicies(t *testing.T) {
	for _, policy := range []string{"fifo", "staleness", "fair-rr", "sync-rounds"} {
		policy := policy
		t.Run(policy, func(t *testing.T) {
			const (
				clients = 4
				steps   = 6
			)
			dep := buildDeployment(t, clients, policy)
			res, err := Run(context.Background(), dep, RunnerConfig{
				StepsPerClient: steps,
				GradTimeout:    20 * time.Second,
				Cluster:        Config{Workers: 2, SyncEvery: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.ServerSteps != clients*steps {
				t.Fatalf("pool processed %d batches, want %d", res.ServerSteps, clients*steps)
			}
			for i, s := range res.StepsPerClient {
				if s != steps {
					t.Errorf("client %d contributed %d steps, want %d", i, s, steps)
				}
			}
			if res.Snapshot.Workers != 2 {
				t.Errorf("snapshot workers = %d, want 2", res.Snapshot.Workers)
			}
			if res.Snapshot.Syncs < 1 {
				t.Errorf("pool completed %d sync barriers, want >= 1 (SyncEvery=4, %d steps)",
					res.Snapshot.Syncs, clients*steps)
			}
			if res.FinalLoss <= 0 {
				t.Errorf("degenerate pool loss %.4f", res.FinalLoss)
			}
		})
	}
}

// TestPoolReplicasConvergeAfterShutdown verifies the supervisor's final
// fold: after Run returns, every replica — and therefore Core(), which
// evaluation reads — carries identical weights, whatever mid-run
// divergence the barrier cadence allowed.
func TestPoolReplicasConvergeAfterShutdown(t *testing.T) {
	dep := buildDeployment(t, 3, "fifo")
	srv := startServer(t, dep, Config{Workers: 3, SyncEvery: 4,
		NewReplica: dep.NewServerReplica})

	done := make(chan error, len(dep.Clients))
	for i := range dep.Clients {
		i := i
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), dep.Clients[i], client, ClientConfig{
				Steps: 8, GradTimeout: 20 * time.Second,
			})
			client.Close()
			done <- err
		}()
	}
	for range dep.Clients {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.AwaitClients(ctx, len(dep.Clients)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	reps := srv.Replicas()
	if len(reps) != 3 {
		t.Fatalf("pool holds %d replicas, want 3", len(reps))
	}
	var primary bytes.Buffer
	if err := reps[0].Stack.SaveWeights(&primary); err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps[1:] {
		var b bytes.Buffer
		if err := rep.Stack.SaveWeights(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(primary.Bytes(), b.Bytes()) {
			t.Errorf("replica %d diverged from primary after shutdown fold", i+1)
		}
	}
	if srv.Core() != reps[0] {
		t.Error("Core() is not the primary replica")
	}
}

// TestLiveMatchesSimulationMultiWorker is the pool's learning-parity
// gate: a live run with N data-parallel replicas syncing by FedAvg must
// land within 10% of the single-model virtual-time simulation's final
// loss on the identical deployment and seed. The tolerance is wider
// than the single-worker 5% bound because replica staleness between
// barriers is a real (bounded) algorithmic perturbation, not a bug —
// but a blow-up beyond 10% would mean the averaging is wrong.
func TestLiveMatchesSimulationMultiWorker(t *testing.T) {
	const (
		clients = 4
		steps   = 30
		seed    = 7
	)
	build := func() *core.Deployment {
		ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(32*clients, 41)
		if err != nil {
			t.Fatal(err)
		}
		shards, err := data.PartitionIID(ds, clients, mathx.NewRNG(4))
		if err != nil {
			t.Fatal(err)
		}
		dep, err := core.NewDeployment(core.Config{
			Model: smallModel(), Cut: 1, Clients: clients, Seed: seed,
			BatchSize: 8, LR: 0.05, QueuePolicy: "fifo",
		}, shards)
		if err != nil {
			t.Fatal(err)
		}
		return dep
	}

	// Single-model virtual-time reference, shared by both worker counts.
	simDep := build()
	paths := make([]*simnet.Path, clients)
	for i := range paths {
		p, err := simnet.NewSymmetricPath(simnet.Constant{D: 5 * time.Millisecond}, 0,
			mathx.NewRNG(uint64(1000+i)))
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	sim, err := core.NewSimulation(simDep, core.SimConfig{
		Paths: paths, MaxStepsPerClient: steps,
		ServerProcTime: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			liveDep := build()
			// SyncEvery 4 bounds each replica's staleness to about one
			// step per replica between barriers at workers=4 — the
			// setting an operator who cares about parity over raw
			// throughput would pick.
			liveRes, err := Run(context.Background(), liveDep, RunnerConfig{
				StepsPerClient: steps, Transport: TransportPipe, GradTimeout: 30 * time.Second,
				Cluster: Config{Workers: workers, SyncEvery: 4},
			})
			if err != nil {
				t.Fatal(err)
			}
			if liveRes.ServerSteps != simRes.ServerSteps {
				t.Fatalf("live processed %d batches, sim %d", liveRes.ServerSteps, simRes.ServerSteps)
			}
			if simRes.FinalLoss <= 0 || liveRes.FinalLoss <= 0 {
				t.Fatalf("degenerate losses: sim %.4f live %.4f", simRes.FinalLoss, liveRes.FinalLoss)
			}
			relGap := math.Abs(liveRes.FinalLoss-simRes.FinalLoss) / simRes.FinalLoss
			t.Logf("final loss: sim %.4f live %.4f (gap %.2f%%) syncs=%d div=%.3g",
				simRes.FinalLoss, liveRes.FinalLoss, relGap*100,
				liveRes.Snapshot.Syncs, liveRes.Snapshot.ReplicaDivergence)
			if relGap > 0.10 {
				t.Fatalf("pooled final loss %.4f deviates %.1f%% from simulation %.4f (tolerance 10%%)",
					liveRes.FinalLoss, relGap*100, simRes.FinalLoss)
			}
		})
	}
}

// TestPoolCheckpointAcrossWorkerCounts regresses the versioned
// checkpoint contract in both directions: an N-replica pool checkpoint
// restores into a single-model server as the replicas' FedAvg average,
// and a legacy single-model checkpoint restores into an M-worker pool
// with the weights fanned out to every replica. Neither direction drops
// a replica's contribution or wedges on the other format.
func TestPoolCheckpointAcrossWorkerCounts(t *testing.T) {
	path := t.TempDir() + "/pool.ckpt"

	// Train a 3-worker pool; Run's shutdown writes the final pool
	// checkpoint (true replica states) and then folds the replicas into
	// the primary — so the on-disk average must equal the folded primary.
	dep := buildDeployment(t, 2, "fifo")
	res, err := Run(context.Background(), dep, RunnerConfig{
		StepsPerClient: 6,
		GradTimeout:    20 * time.Second,
		Cluster: Config{
			Workers: 3, SyncEvery: 4,
			Checkpoint: FileCheckpointer(path), CheckpointEvery: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Pool checkpoint -> single-model server (N=3 into M=1).
	dep1 := buildDeployment(t, 2, "fifo")
	steps, restored, err := RestoreFromFile(path, dep1.Server)
	if err != nil || !restored {
		t.Fatalf("pool restore: restored=%v err=%v", restored, err)
	}
	if steps != res.ServerSteps {
		t.Fatalf("restored %d steps, want the pool total %d", steps, res.ServerSteps)
	}
	var folded, loaded bytes.Buffer
	if err := dep.Server.Stack.SaveWeights(&folded); err != nil {
		t.Fatal(err)
	}
	if err := dep1.Server.Stack.SaveWeights(&loaded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(folded.Bytes(), loaded.Bytes()) {
		t.Error("restored average differs from the pool's folded primary")
	}

	// Legacy single-model checkpoint -> 2-worker pool (N=1 into M=2):
	// NewServer fans the restored weights out to every replica.
	legacy := t.TempDir() + "/legacy.ckpt"
	if err := FileCheckpointer(legacy)([]*core.Server{dep1.Server}); err != nil {
		t.Fatal(err)
	}
	dep2 := buildDeployment(t, 2, "fifo")
	if _, restored, err := RestoreFromFile(legacy, dep2.Server); err != nil || !restored {
		t.Fatalf("legacy restore: restored=%v err=%v", restored, err)
	}
	srv2, err := NewServer(dep2.Server, Config{
		Workers: 2, NewReplica: dep2.NewServerReplica,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range srv2.Replicas() {
		var b bytes.Buffer
		if err := rep.Stack.SaveWeights(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(loaded.Bytes(), b.Bytes()) {
			t.Errorf("replica %d does not carry the restored weights after fan-out", i)
		}
	}

	// The resumed pool must train on: a fresh 2-worker run from the
	// restored deployment completes its whole budget.
	res2, err := Run(context.Background(), dep2, RunnerConfig{
		StepsPerClient: 4,
		GradTimeout:    20 * time.Second,
		Cluster:        Config{Workers: 2, SyncEvery: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ServerSteps != 8 {
		t.Fatalf("resumed pool processed %d batches, want 8", res2.ServerSteps)
	}
}

// TestPoolEvictionDoesNotOrphan joins a poisoned client (activations of
// the wrong shape for the server's cut) alongside healthy clients on a
// 2-worker pool. The eviction happens on whichever replica drew the
// poisoned item; the healthy clients' in-flight items — possibly popped
// by the *other* replica at that moment — must all be served: eviction
// is session-scoped, never pool-scoped. Run with -race.
func TestPoolEvictionDoesNotOrphan(t *testing.T) {
	const (
		healthy = 3
		steps   = 6
	)
	dep := buildDeployment(t, healthy+1, "fifo")
	srv := startServer(t, dep, Config{
		Workers: 2, SyncEvery: 4, NewReplica: dep.NewServerReplica,
	})

	// The poisoned client speaks the protocol but ships a payload with
	// the wrong trailing shape for the server's cut point.
	poisoned, poisonedSrv := transport.NewPair(1)
	srv.Attach(poisonedSrv)
	if err := poisoned.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: healthy, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := poisoned.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("poisoned join: msg=%v err=%v", msg, err)
	}
	if err := poisoned.Send(&transport.Message{
		Type: transport.MsgActivation, ClientID: healthy, Seq: 0,
		Payload: tensor.New(8, 3), Labels: make([]int, 8),
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, healthy)
	for i := 0; i < healthy; i++ {
		i := i
		client, server := transport.NewPair(1)
		srv.Attach(server)
		go func() {
			_, err := RunClient(context.Background(), dep.Clients[i], client, ClientConfig{
				Steps: steps, GradTimeout: 20 * time.Second,
			})
			client.Close()
			done <- err
		}()
	}
	for i := 0; i < healthy; i++ {
		if err := <-done; err != nil {
			t.Fatalf("healthy client failed alongside poisoned poolmate: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.AwaitClients(ctx, healthy+1)
	if err == nil {
		t.Fatal("expected the poisoned client's processing error from AwaitClients")
	}
	for _, c := range srv.Snapshot().Clients {
		if c.ID < healthy {
			if c.Served != steps {
				t.Errorf("healthy client %d served %d, want %d", c.ID, c.Served, steps)
			}
			if c.Err != "" {
				t.Errorf("healthy client %d recorded error: %s", c.ID, c.Err)
			}
		} else if c.Err == "" {
			t.Error("poisoned client not recorded as evicted")
		}
	}
	poisoned.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
