package cluster

import (
	"context"
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/stsl/stsl/internal/core"
	"github.com/stsl/stsl/internal/obs"
	"github.com/stsl/stsl/internal/transport"
)

// TestJoinStormAdmissionControl is the overload acceptance gate: a join
// storm of 3× MaxSessions clients hits the server at once. Admission
// control must refuse the overflow with RetryAfter hints, /healthz must
// stay responsive throughout, the refused clients must back off with
// decorrelated jitter (no synchronized retry spike) and get admitted as
// earlier sessions drain — and the training result must match the
// fault-free simulation within the usual ±10%, because admission control
// defers work but never loses or double-trains a batch.
func TestJoinStormAdmissionControl(t *testing.T) {
	const (
		clients     = 9
		maxSessions = 3
		steps       = 6
	)
	reference := faultFreeLoss(t, clients, steps)

	dep := chaosDeployment(t, clients)
	srv := startServer(t, dep, Config{
		MaxSessions:    maxSessions,
		ResumeGrace:    10 * time.Second,
		RetryAfterHint: 5 * time.Millisecond,
	})

	// Health poller: hammer the endpoint for the storm's whole duration;
	// it must never block behind the accept path or a busy worker.
	stopHealth := make(chan struct{})
	healthDone := make(chan struct{})
	var healthCalls atomic.Int64
	var healthMax atomic.Int64
	var badState atomic.Value // first non-OK HealthState seen, if any
	go func() {
		defer close(healthDone)
		for {
			select {
			case <-stopHealth:
				return
			default:
			}
			begin := time.Now()
			h := srv.Health()
			if d := time.Since(begin); d > time.Duration(healthMax.Load()) {
				healthMax.Store(int64(d))
			}
			if !h.OK() {
				// degraded/stopped mid-storm would be a gate misfire — no
				// shed-gate thresholds are configured in this test.
				badState.CompareAndSwap(nil, string(h.State))
			}
			healthCalls.Add(1)
			time.Sleep(500 * time.Microsecond)
		}
	}()

	dial := func() (transport.Conn, error) {
		client, server := transport.NewPair(1)
		srv.Attach(server)
		return client, nil
	}
	results := make([]*ClientResult, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, _ := dial()
			res, err := RunClient(context.Background(), dep.Clients[i], conn, ClientConfig{
				Steps:            steps,
				GradTimeout:      20 * time.Second,
				Dial:             dial,
				MaxReconnects:    50,
				ReconnectBackoff: 5 * time.Millisecond,
				BackoffSeed:      uint64(1000 + i),
				RetryBudget:      64,
				RetryRefill:      256,
			})
			conn.Close()
			results[i] = res
			errs <- err
		}()
	}
	wg.Wait()
	close(stopHealth)
	<-healthDone
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("storm client failed: %v", err)
		}
	}
	if s := badState.Load(); s != nil {
		t.Fatalf("health reported %q during the storm; want ready/live throughout", s)
	}

	// Every refused client must eventually have been admitted and
	// finished its full budget, exactly once per batch.
	snap := srv.Snapshot()
	if snap.ServerSteps != clients*steps {
		t.Fatalf("server processed %d batches, want exactly %d", snap.ServerSteps, clients*steps)
	}
	if snap.Refused == 0 {
		t.Fatalf("9 simultaneous joins against a cap of %d produced no refusals — admission control is not engaging", maxSessions)
	}
	totalRefused := 0
	for _, res := range results {
		totalRefused += res.Refused
	}
	if totalRefused == 0 {
		t.Fatal("no client recorded a refusal wait")
	}

	// The health endpoint stayed live and cheap during the storm.
	if healthCalls.Load() < 20 {
		t.Fatalf("health poller managed only %d calls during the storm", healthCalls.Load())
	}
	if d := time.Duration(healthMax.Load()); d > time.Second {
		t.Fatalf("a Health() call blocked for %v during the storm", d)
	}
	// Slots must drain back to zero once the last Done is processed.
	waitFor(t, func() bool {
		h := srv.Health()
		return h.State == HealthReady && h.Sessions == 0
	})

	// Decorrelated jitter: pool every post-refusal retry timestamp and
	// check the cohort did not re-arrive as one spike. A synchronized
	// cohort lands in a single 2ms bucket; jittered draws spread out.
	var retries []time.Duration
	for _, res := range results {
		if len(res.JoinAttempts) > 1 {
			retries = append(retries, res.JoinAttempts[1:]...)
		}
	}
	if len(retries) == 0 {
		t.Fatal("refusals recorded but no retry join attempts — JoinAttempts instrumentation broken")
	}
	if len(retries) >= 4 {
		buckets := map[int64]int{}
		maxBucket := 0
		for _, at := range retries {
			b := int64(at / (2 * time.Millisecond))
			buckets[b]++
			if buckets[b] > maxBucket {
				maxBucket = buckets[b]
			}
		}
		t.Logf("storm: %d refusals, %d retries across %d 2ms-buckets (max bucket %d)",
			totalRefused, len(retries), len(buckets), maxBucket)
		if len(buckets) < 2 {
			t.Fatalf("all %d retry attempts landed in one 2ms bucket — retries are synchronized", len(retries))
		}
		if maxBucket > (len(retries)+1)/2 {
			t.Fatalf("%d of %d retry attempts share one 2ms bucket — jitter is not decorrelating the cohort",
				maxBucket, len(retries))
		}
	}

	// Convergence parity with the fault-free simulation.
	finalLoss := dep.Server.Losses.Last()
	gap := math.Abs(finalLoss-reference) / reference
	t.Logf("loss: fault-free sim %.4f, storm live %.4f (gap %.1f%%); %d refusals, %d retry joins",
		reference, finalLoss, gap*100, snap.Refused, len(retries))
	if gap > 0.10 {
		t.Fatalf("storm loss %.4f deviates %.1f%% from fault-free %.4f (tolerance 10%%)",
			finalLoss, gap*100, reference)
	}
}

// TestRefusalWithoutDialIsTyped: a refused one-shot client (no Dial)
// cannot retry, so RunClient must surface the typed overload error for
// errors.Is — the contract the load generator's refusal-rate metric and
// any caller-side fallback logic key on.
func TestRefusalWithoutDialIsTyped(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	srv := startServer(t, dep, Config{MaxSessions: 1, ResumeGrace: 10 * time.Second})

	// Fill the only slot with a manual join that never leaves.
	holder, holderSide := transport.NewPair(1)
	srv.Attach(holderSide)
	if err := holder.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := holder.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("holder join: msg=%v err=%v", msg, err)
	}
	defer holder.Close()

	late, lateSide := transport.NewPair(1)
	srv.Attach(lateSide)
	_, err := RunClient(context.Background(), dep.Clients[1], late, ClientConfig{
		Steps: 1, GradTimeout: 5 * time.Second,
	})
	late.Close()
	if err == nil {
		t.Fatal("join beyond the session cap succeeded")
	}
	if !errors.Is(err, ErrServerOverloaded) {
		t.Fatalf("refusal error %v does not match ErrServerOverloaded", err)
	}
	if !errors.Is(err, ErrRetryLater) {
		t.Fatalf("overload refusal %v must also match the broader ErrRetryLater", err)
	}
}

// TestSlowLorisPreJoinTimeout: a connection that never introduces itself
// must be cut loose by the handshake deadline — the janitor only scans
// joined sessions, so without this timer a slow-loris of silent
// connections would pin session loops forever.
func TestSlowLorisPreJoinTimeout(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	srv := startServer(t, dep, Config{
		StragglerTimeout: 100 * time.Millisecond,
		ResumeGrace:      time.Millisecond, // loris carcasses must not linger parked
	})

	// Three silent connections attach and say nothing.
	lorises := make([]transport.Conn, 3)
	for i := range lorises {
		c, serverSide := transport.NewPair(1)
		srv.Attach(serverSide)
		lorises[i] = c
	}
	// A healthy client trains through the attack.
	healthy, healthySide := transport.NewPair(1)
	srv.Attach(healthySide)
	const steps = 3
	res, err := RunClient(context.Background(), dep.Clients[0], healthy, ClientConfig{
		Steps: steps, GradTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("healthy client failed during slow-loris: %v", err)
	}
	if res.Steps != steps {
		t.Fatalf("healthy client finished %d steps, want %d", res.Steps, steps)
	}
	// Each silent connection must be closed by the server side.
	for i, c := range lorises {
		done := make(chan error, 1)
		go func(c transport.Conn) {
			_, err := c.Recv()
			done <- err
		}(c)
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("loris %d received a message instead of a hangup", i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("loris %d still connected long past the handshake deadline", i)
		}
		c.Close()
	}
}

// TestStalledReaderEvicted: a client that uploads work and then stops
// draining its socket must not wedge the worker fleet. With SendTimeout
// set, the blocked reply write trips the deadline, the staller is
// evicted, and other clients keep training.
func TestStalledReaderEvicted(t *testing.T) {
	dep := buildDeployment(t, 2, "fifo")
	srv := startServer(t, dep, Config{
		SendTimeout: 100 * time.Millisecond,
		ResumeGrace: 0, // a stall is an eviction, not a park
	})

	// The staller speaks the wire protocol over an unbuffered pipe: the
	// server's reply write genuinely blocks until someone reads.
	clientNC, serverNC := net.Pipe()
	staller := transport.NewTCPConn(clientNC)
	srv.Attach(transport.NewTCPConn(serverNC))
	if err := staller.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 1, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := staller.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("staller join: msg=%v err=%v", msg, err)
	}
	batch, err := dep.Clients[1].ProduceBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := staller.Send(batch); err != nil {
		t.Fatal(err)
	}
	// ... and now the staller never reads again.

	// A healthy client must finish despite the worker briefly blocking
	// on the staller's reply.
	healthy, healthySide := transport.NewPair(1)
	srv.Attach(healthySide)
	const steps = 3
	res, err := RunClient(context.Background(), dep.Clients[0], healthy, ClientConfig{
		Steps: steps, GradTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("healthy client failed behind a stalled reader: %v", err)
	}
	if res.Steps != steps {
		t.Fatalf("healthy client finished %d steps, want %d", res.Steps, steps)
	}

	waitFor(t, func() bool {
		for _, c := range srv.Snapshot().Clients {
			if c.ID == 1 {
				return c.Err != "" && strings.Contains(c.Err, "stalled")
			}
		}
		return false
	})
	staller.Close()
}

// TestDeadlineShedRollsBackAndReports: with a WorkDeadline so tight no
// queued item can make it, an uploaded batch must be shed un-served —
// the client told to resend via an expired notice, the dedup watermark
// rolled back so the resend is not mistaken for a duplicate, and the
// shed visible in both Snapshot and the Prometheus exposition.
func TestDeadlineShedRollsBackAndReports(t *testing.T) {
	reg := obs.NewRegistry()
	dep := buildDeployment(t, 1, "fifo")
	srv := startServer(t, dep, Config{
		WorkDeadline: time.Nanosecond,
		Obs:          reg,
	})

	conn, serverSide := transport.NewPair(1)
	srv.Attach(serverSide)
	if err := conn.Send(&transport.Message{
		Type: transport.MsgControl, ClientID: 0, Note: core.JoinNote,
	}); err != nil {
		t.Fatal(err)
	}
	if msg, err := conn.Recv(); err != nil || msg.Note != core.WelcomeNote {
		t.Fatalf("join: msg=%v err=%v", msg, err)
	}
	batch, err := dep.Clients[0].ProduceBatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.Send(batch); err != nil {
		t.Fatal(err)
	}
	reply, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Note != core.ExpiredNote || reply.Code != transport.RefusalExpired {
		t.Fatalf("shed batch got note %q code %v, want %q/%v",
			reply.Note, reply.Code, core.ExpiredNote, transport.RefusalExpired)
	}
	if reply.Seq != batch.Seq {
		t.Fatalf("expired notice names seq %d, want %d", reply.Seq, batch.Seq)
	}
	snap := srv.Snapshot()
	if snap.Shed == 0 {
		t.Fatal("Snapshot.Shed is zero after a deadline shed")
	}
	if snap.ServerSteps != 0 {
		t.Fatalf("server trained %d shed batches", snap.ServerSteps)
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, line := range strings.Split(expo.String(), "\n") {
		if strings.HasPrefix(line, "stsl_queue_expired_total") && !strings.HasSuffix(line, " 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("stsl_queue_expired_total not exported non-zero:\n%s", expo.String())
	}
	conn.Close()
}
