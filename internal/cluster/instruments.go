package cluster

import (
	"fmt"
	"strconv"
	"time"

	"github.com/stsl/stsl/internal/obs"
)

// instruments is the cluster server's telemetry bundle: session
// lifecycle counters, the worker fleet's per-stage timing histograms
// (one set per replica, labeled replica=<id>), and the pool's sync
// telemetry. The lifecycle counters are owned by whichever goroutine
// performs the transition (session loops join/park, the janitor and
// workers evict); workers[i] is written only by worker goroutine i, and
// the sync instruments only by the barrier's last arriver or the
// supervisor — see DESIGN.md §3.2 and §3.4 for the ownership rules.
type instruments struct {
	joins     *obs.Counter
	resumes   *obs.Counter
	parks     *obs.Counter
	leaves    *obs.Counter
	evictions *obs.Counter
	refusals  *obs.Counter
	brownouts *obs.Counter

	// corruptFrames counts inbound frames rejected by their CRC32C
	// trailer (stsl_corrupt_frames_total); quarantines counts clients
	// blocklisted by the activation sanitizer (stsl_quarantined_total).
	corruptFrames *obs.Counter
	quarantines   *obs.Counter

	// reg backs the lazily created per-client suspicion gauges.
	reg *obs.Registry

	// workers holds one per-stage histogram set per model replica.
	workers []workerInstruments

	// syncSeconds times one pool sync barrier: divergence read, FedAvg
	// average, fan-out (stsl_sync_seconds).
	syncSeconds *obs.Histogram
	// divergence is the normalised RMS replica spread measured just
	// before each average erased it (stsl_replica_divergence).
	divergence *obs.Gauge
}

// workerInstruments is one replica's stage timing set.
type workerInstruments struct {
	// pop is time the worker spent obtaining its next batch — blocked
	// waits included, so it reads as "idle share" next to process
	// (stsl_worker_pop_seconds).
	pop *obs.Histogram
	// process times the coalesced forward/backward/step pass
	// (stsl_worker_process_seconds).
	process *obs.Histogram
	// scatter times fanning gradient replies back to sessions
	// (stsl_worker_scatter_seconds).
	scatter *obs.Histogram
}

func newInstruments(reg *obs.Registry, workers int) *instruments {
	event := func(kind string) *obs.Counter {
		return reg.Counter("stsl_cluster_sessions_total", obs.Labels{"event": kind})
	}
	if workers < 1 {
		workers = 1
	}
	ins := &instruments{
		joins:       event("join"),
		resumes:     event("resume"),
		parks:       event("park"),
		leaves:      event("leave"),
		evictions:   event("evict"),
		refusals:    event("refuse"),
		brownouts:   event("brownout-park"),
		workers:     make([]workerInstruments, workers),
		syncSeconds: reg.Histogram("stsl_sync_seconds", nil),
		divergence:  reg.Gauge("stsl_replica_divergence", nil),

		corruptFrames: reg.Counter("stsl_corrupt_frames_total", nil),
		quarantines:   reg.Counter("stsl_quarantined_total", nil),
		reg:           reg,
	}
	for i := range ins.workers {
		lbl := obs.Labels{"replica": strconv.Itoa(i)}
		ins.workers[i] = workerInstruments{
			pop:     reg.Histogram("stsl_worker_pop_seconds", lbl),
			process: reg.Histogram("stsl_worker_process_seconds", lbl),
			scatter: reg.Histogram("stsl_worker_scatter_seconds", lbl),
		}
	}
	return ins
}

// suspicionGauge is the per-client suspicion score series
// (stsl_client_suspicion{client="N"}), created on first use — only
// clients the sanitizer has actually scored appear in /metrics.
func (ins *instruments) suspicionGauge(client int) *obs.Gauge {
	return ins.reg.Gauge("stsl_client_suspicion", obs.Labels{"client": strconv.Itoa(client)})
}

// lifecycle records one session transition: a counter bump and a trace
// event. Safe with nil instruments and/or a nil tracer (no-ops), so
// call sites record transitions unconditionally.
func (s *Server) lifecycle(kind string, client int, note string) {
	if ins := s.ins; ins != nil {
		switch kind {
		case "session.join":
			ins.joins.Inc()
		case "session.resume":
			ins.resumes.Inc()
		case "session.park":
			ins.parks.Inc()
		case "session.leave":
			ins.leaves.Inc()
		case "session.evict":
			ins.evictions.Inc()
		case "session.refuse":
			ins.refusals.Inc()
		case "session.brownout":
			ins.brownouts.Inc()
		case "session.quarantine":
			ins.quarantines.Inc()
		}
	}
	s.tr.Event(kind, client, -1, note)
}

// rateWindow is the horizon of Snapshot's windowed throughput: wide
// enough to smooth coalescing bursts, narrow enough that a dashboard
// sees a stall within seconds.
const rateWindow = 10 * time.Second

// rateSample is one (wall time, cumulative steps) observation for the
// windowed rate.
type rateSample struct {
	at    time.Time
	steps int
}

// observeStepLocked appends a rate sample at most every rateWindow/40
// (250ms at the 10s window) and prunes samples that fell out of the
// window, keeping one pre-window baseline so the rate always spans the
// full horizon once enough history exists. Caller must hold s.mu.
func (s *Server) observeStepLocked(now time.Time) {
	const cadence = rateWindow / 40
	n := len(s.rateSamples)
	if n > 0 && now.Sub(s.rateSamples[n-1].at) < cadence {
		return
	}
	s.rateSamples = append(s.rateSamples, rateSample{at: now, steps: s.steps})
	// Prune to: at most one sample older than the window (the
	// baseline), plus everything inside it.
	cut := 0
	for cut < len(s.rateSamples)-1 && now.Sub(s.rateSamples[cut+1].at) > rateWindow {
		cut++
	}
	if cut > 0 {
		s.rateSamples = append(s.rateSamples[:0], s.rateSamples[cut:]...)
	}
}

// windowRateLocked computes steps/s over (at most) the trailing
// rateWindow. Caller must hold s.mu.
func (s *Server) windowRateLocked(now time.Time) float64 {
	if len(s.rateSamples) == 0 {
		return 0
	}
	base := s.rateSamples[0]
	for _, smp := range s.rateSamples {
		if now.Sub(smp.at) <= rateWindow {
			base = smp
			break
		}
		base = smp
	}
	elapsed := now.Sub(base.at)
	if elapsed < 50*time.Millisecond {
		// Too little history for a meaningful rate — and guarding the
		// division is the point: a near-zero denominator would report
		// absurd throughput right after warmup.
		return 0
	}
	return float64(s.steps-base.steps) / elapsed.Seconds()
}

// workerSpan records one completed worker stage into both the stage
// histogram (nil-safe) and the trace ring. n annotates the batch size,
// id the replica that ran the stage. Only called when telemetry is
// enabled, so the disabled hot path pays a single bool check and no
// clock reads.
func (s *Server) workerSpan(kind string, id int, h *obs.Histogram, start time.Time, n int) {
	d := time.Since(start)
	h.ObserveDuration(d)
	s.tr.Record(kind, -1, -1, fmt.Sprintf("n=%d r=%d", n, id), d)
}
