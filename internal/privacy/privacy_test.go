package privacy

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

func TestCorrelationProperties(t *testing.T) {
	r := mathx.NewRNG(1)
	a := tensor.Randn(r, 1, 8, 8)
	// Perfect correlation with itself and any affine transform.
	if c, err := Correlation(a, a); err != nil || c < 0.999 {
		t.Fatalf("self correlation = %v, %v", c, err)
	}
	b := a.Scale(-3)
	b.ApplyInPlace(func(v float64) float64 { return v + 7 })
	if c, err := Correlation(a, b); err != nil || c < 0.999 {
		t.Fatalf("affine correlation = %v, %v", c, err)
	}
	// Independent noise: low correlation.
	noise := tensor.Randn(mathx.NewRNG(999), 1, 8, 8)
	if c, err := Correlation(a, noise); err != nil || c > 0.5 {
		t.Fatalf("noise correlation = %v, %v", c, err)
	}
	// Constant map: zero correlation, no NaN.
	if c, err := Correlation(a, tensor.Full(2, 8, 8)); err != nil || c != 0 {
		t.Fatalf("constant correlation = %v, %v", c, err)
	}
	if _, err := Correlation(a, tensor.New(4, 4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestPSNR(t *testing.T) {
	a := tensor.Full(0.5, 4, 4)
	if p, err := PSNR(a, a.Clone()); err != nil || p != 100 {
		t.Fatalf("identical PSNR = %v, %v", p, err)
	}
	// Uniform error of 0.1 → MSE 0.01 → PSNR 20 dB.
	b := a.Apply(func(v float64) float64 { return v + 0.1 })
	p, err := PSNR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p < 19.9 || p > 20.1 {
		t.Fatalf("PSNR = %v, want ≈20", p)
	}
}

func TestSSIMBounds(t *testing.T) {
	r := mathx.NewRNG(2)
	a := tensor.Rand(r, 0, 1, 8, 8)
	s, err := SSIM(a, a.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.999 {
		t.Fatalf("self SSIM = %v", s)
	}
	noise := tensor.Rand(mathx.NewRNG(77), 0, 1, 8, 8)
	sn, err := SSIM(a, noise)
	if err != nil {
		t.Fatal(err)
	}
	if sn >= s {
		t.Fatalf("noise SSIM %v not below self SSIM %v", sn, s)
	}
}

func TestNormalizeUnitAndResize(t *testing.T) {
	m := tensor.FromSlice([]float64{-1, 0, 1, 3}, 2, 2)
	n := normalizeUnit(m)
	if n.At(0, 0) != 0 || n.At(1, 1) != 1 {
		t.Fatalf("normalizeUnit = %v", n)
	}
	// Constant input normalises to zeros.
	z := normalizeUnit(tensor.Full(5, 2, 2))
	if z.MaxAbs() != 0 {
		t.Fatalf("constant normalize = %v", z)
	}
	big := resizeNearest(m, 4, 4)
	if s := big.Shape(); s[0] != 4 || s[1] != 4 {
		t.Fatalf("resize shape %v", s)
	}
	if big.At(0, 0) != m.At(0, 0) || big.At(3, 3) != m.At(1, 1) {
		t.Fatal("nearest resize misplaced corners")
	}
}

func TestSaveImagePNG(t *testing.T) {
	dir := t.TempDir()
	r := mathx.NewRNG(3)
	img := tensor.Rand(r, 0, 1, 3, 8, 8)
	path := filepath.Join(dir, "sub", "img.png")
	if err := SaveImagePNG(img, path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("png not written: %v", err)
	}
	// Grayscale single channel also works.
	if err := SaveImagePNG(tensor.Rand(r, 0, 1, 1, 4, 4), filepath.Join(dir, "g.png")); err != nil {
		t.Fatal(err)
	}
	// Wrong shape rejected.
	if err := SaveImagePNG(tensor.New(2, 4, 4), filepath.Join(dir, "bad.png")); err == nil {
		t.Fatal("2-channel image accepted")
	}
}

func TestSaveActivationGridPNG(t *testing.T) {
	dir := t.TempDir()
	r := mathx.NewRNG(4)
	act := tensor.Randn(r, 1, 6, 5, 5)
	path := filepath.Join(dir, "grid.png")
	if err := SaveActivationGridPNG(act, 3, path); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() == 0 {
		t.Fatalf("grid not written: %v", err)
	}
}

func TestRunFig4MonotoneLeak(t *testing.T) {
	r := mathx.NewRNG(5)
	model, err := nn.BuildPaperCNN(nn.PaperCNNConfig{
		Height: 16, Width: 16, Filters: []int{8, 16}, Hidden: 32, Classes: 4,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := (data.SynthCIFAR{Height: 16, Width: 16, Classes: 4, Noise: 0.03}).Generate(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	monotone := 0
	for i := 0; i < ds.Len(); i++ {
		res, err := RunFig4(model, ds.Image(i), "")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Stages) != 3 {
			t.Fatalf("stages = %d", len(res.Stages))
		}
		if res.Stages[0].Leak.Correlation != 1 {
			t.Fatal("original stage must leak perfectly")
		}
		if res.Monotone() {
			monotone++
		}
		// The pooled stage must always leak less than the raw original.
		if res.Stages[2].Leak.Correlation >= 1 {
			t.Fatal("pooled activation claims perfect leak")
		}
	}
	// The qualitative Fig-4 claim: for most images pooling hides more
	// than convolution alone.
	if monotone < ds.Len()/2 {
		t.Fatalf("leak monotone for only %d/%d images", monotone, ds.Len())
	}
}

func TestRunFig4WritesPNGs(t *testing.T) {
	dir := t.TempDir()
	r := mathx.NewRNG(6)
	model, err := nn.BuildPaperCNN(nn.PaperCNNConfig{
		Height: 8, Width: 8, Filters: []int{4}, Hidden: 16, Classes: 4,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := (data.SynthCIFAR{Height: 8, Width: 8, Classes: 4}).Generate(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunFig4(model, ds.Image(0), dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"original.png", "conv_l1.png", "l1.png"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
	}
}

func TestReconstructionAttackLeaksLessWithPooling(t *testing.T) {
	// The stronger adversary: a trained decoder reconstructs better from
	// conv-only activations (cut after conv1, no pool) than from the full
	// first block (conv+pool). We approximate "conv only" with a 1-block
	// model cut before pooling by building stacks manually.
	r := mathx.NewRNG(7)
	gen := data.SynthCIFAR{Height: 8, Width: 8, Classes: 4, Noise: 0.03}
	aux, err := gen.Generate(96, 11)
	if err != nil {
		t.Fatal(err)
	}
	holdout, err := gen.Generate(16, 12)
	if err != nil {
		t.Fatal(err)
	}

	conv, err := nn.NewConv2D(nn.Conv2DConfig{Name: "c1", In: 3, Out: 4, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	relu := nn.NewReLU("r1")
	pool, err := nn.NewMaxPool2D("p1", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	convOnly, err := nn.NewSequential("conv-only", conv, relu)
	if err != nil {
		t.Fatal(err)
	}
	convPool, err := nn.NewSequential("conv-pool", conv, relu, pool)
	if err != nil {
		t.Fatal(err)
	}

	cfg := AttackConfig{Seed: 13, Steps: 150, BatchSize: 16, LR: 0.005, Hidden: 64}
	resConv, err := ReconstructionAttack(cfg, convOnly, aux, holdout)
	if err != nil {
		t.Fatal(err)
	}
	resPool, err := ReconstructionAttack(cfg, convPool, aux, holdout)
	if err != nil {
		t.Fatal(err)
	}
	if resConv.MeanCorrelation <= resPool.MeanCorrelation {
		t.Fatalf("attack on conv-only (corr %.3f) not stronger than on conv+pool (corr %.3f)",
			resConv.MeanCorrelation, resPool.MeanCorrelation)
	}
}

func TestReconstructionAttackValidation(t *testing.T) {
	r := mathx.NewRNG(8)
	d, err := nn.NewDense("d", 4, 4, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := nn.NewSequential("s", d)
	if err != nil {
		t.Fatal(err)
	}
	empty := &data.Dataset{X: tensor.New(0, 1, 2, 2), Classes: 2}
	if _, err := ReconstructionAttack(AttackConfig{}, seq, empty, empty); err == nil {
		t.Fatal("empty datasets accepted")
	}
}
