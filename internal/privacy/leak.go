// Package privacy quantifies and visualises what the "smashed" activations
// leaving an end-system reveal about the raw inputs — the paper's Fig 4.
// It renders activations as images, computes leakage metrics (pixel
// correlation, PSNR, a simplified SSIM) between the original image and the
// best single-channel "view" an eavesdropper gets, and mounts a trained
// reconstruction attack as a stronger adversary.
package privacy

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// grayscale collapses a (C,H,W) image to (H,W) by channel mean.
func grayscale(img *tensor.Tensor) *tensor.Tensor {
	s := img.Shape()
	c, h, w := s[0], s[1], s[2]
	out := tensor.New(h, w)
	src, dst := img.Data(), out.Data()
	for ch := 0; ch < c; ch++ {
		for i := 0; i < h*w; i++ {
			dst[i] += src[ch*h*w+i]
		}
	}
	inv := 1 / float64(c)
	for i := range dst {
		dst[i] *= inv
	}
	return out
}

// resizeNearest scales a (H,W) map to (outH,outW) with nearest-neighbour
// sampling — adequate for leakage comparison since pooling reduces
// resolution by integer factors.
func resizeNearest(m *tensor.Tensor, outH, outW int) *tensor.Tensor {
	s := m.Shape()
	h, w := s[0], s[1]
	out := tensor.New(outH, outW)
	for y := 0; y < outH; y++ {
		sy := y * h / outH
		for x := 0; x < outW; x++ {
			sx := x * w / outW
			out.Set(m.At(sy, sx), y, x)
		}
	}
	return out
}

// normalizeUnit affinely maps values to [0,1]; a constant map becomes all
// zeros.
func normalizeUnit(m *tensor.Tensor) *tensor.Tensor {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m.Data() {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := m.Clone()
	if hi-lo < 1e-12 {
		out.Zero()
		return out
	}
	inv := 1 / (hi - lo)
	out.ApplyInPlace(func(v float64) float64 { return (v - lo) * inv })
	return out
}

// Correlation returns the absolute Pearson correlation between two
// equally-shaped maps. 1 means the activation is a recolouring of the
// original; 0 means it carries no linear pixel information.
func Correlation(a, b *tensor.Tensor) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("privacy: correlation size mismatch %v vs %v", a.Shape(), b.Shape())
	}
	n := float64(a.Size())
	if n == 0 {
		return 0, fmt.Errorf("privacy: correlation of empty tensors")
	}
	ad, bd := a.Data(), b.Data()
	var sa, sb float64
	for i := range ad {
		sa += ad[i]
		sb += bd[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range ad {
		da, db := ad[i]-ma, bd[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va < 1e-18 || vb < 1e-18 {
		return 0, nil
	}
	return math.Abs(cov / math.Sqrt(va*vb)), nil
}

// PSNR returns the peak signal-to-noise ratio in dB between a reference
// and a reconstruction, both expected in [0,1]. Higher = more faithful.
func PSNR(ref, rec *tensor.Tensor) (float64, error) {
	if ref.Size() != rec.Size() {
		return 0, fmt.Errorf("privacy: PSNR size mismatch %v vs %v", ref.Shape(), rec.Shape())
	}
	if ref.Size() == 0 {
		return 0, fmt.Errorf("privacy: PSNR of empty tensors")
	}
	rd, cd := ref.Data(), rec.Data()
	mse := 0.0
	for i := range rd {
		d := rd[i] - cd[i]
		mse += d * d
	}
	mse /= float64(len(rd))
	if mse < 1e-18 {
		return 100, nil // capped "identical" value
	}
	return 10 * math.Log10(1/mse), nil
}

// SSIM returns a single-window simplified structural-similarity index
// between two [0,1] maps: the standard SSIM formula computed over the
// whole image instead of sliding windows — adequate for ranking leakage.
func SSIM(a, b *tensor.Tensor) (float64, error) {
	if a.Size() != b.Size() {
		return 0, fmt.Errorf("privacy: SSIM size mismatch %v vs %v", a.Shape(), b.Shape())
	}
	n := float64(a.Size())
	if n == 0 {
		return 0, fmt.Errorf("privacy: SSIM of empty tensors")
	}
	const c1, c2 = 0.01 * 0.01, 0.03 * 0.03
	ad, bd := a.Data(), b.Data()
	var sa, sb float64
	for i := range ad {
		sa += ad[i]
		sb += bd[i]
	}
	ma, mb := sa/n, sb/n
	var va, vb, cov float64
	for i := range ad {
		da, db := ad[i]-ma, bd[i]-mb
		va += da * da
		vb += db * db
		cov += da * db
	}
	va, vb, cov = va/n, vb/n, cov/n
	num := (2*ma*mb + c1) * (2*cov + c2)
	den := (ma*ma + mb*mb + c1) * (va + vb + c2)
	return num / den, nil
}

// edgeMap returns the first-difference gradient magnitude |∂x| + |∂y| of
// a (H,W) map — the high-frequency content that makes an image
// recognisable. Max-pooling destroys exactly this, which is the
// quantitative form of Fig 4's "max-pooling can definitely hide original
// images".
func edgeMap(m *tensor.Tensor) *tensor.Tensor {
	s := m.Shape()
	h, w := s[0], s[1]
	out := tensor.New(h, w)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := 0.0
			if x+1 < w {
				g += math.Abs(m.At(y, x+1) - m.At(y, x))
			}
			if y+1 < h {
				g += math.Abs(m.At(y+1, x) - m.At(y, x))
			}
			out.Set(g, y, x)
		}
	}
	return out
}

// LeakReport aggregates the metrics for one comparison. Correlation,
// PSNRdB and SSIM measure coarse structural leakage; EdgeCorrelation
// measures fine-detail leakage (the component pooling removes).
type LeakReport struct {
	Correlation     float64
	PSNRdB          float64
	SSIM            float64
	EdgeCorrelation float64
}

// BestChannelLeak measures how much a (C,H,W) activation tensor reveals
// about a (3,H0,W0) original image: every activation channel is resized
// to the original geometry and normalised, and the best (most revealing)
// channel's metrics are reported — the eavesdropper's best single view.
func BestChannelLeak(original, activation *tensor.Tensor) (*LeakReport, error) {
	os := original.Shape()
	as := activation.Shape()
	if len(os) != 3 || len(as) != 3 {
		return nil, fmt.Errorf("privacy: BestChannelLeak wants (C,H,W) tensors, got %v and %v", os, as)
	}
	gray := normalizeUnit(grayscale(original))
	grayEdges := edgeMap(gray)
	h0, w0 := os[1], os[2]
	best := &LeakReport{}
	for ch := 0; ch < as[0]; ch++ {
		plane := tensor.New(as[1], as[2])
		copy(plane.Data(), activation.Data()[ch*as[1]*as[2]:(ch+1)*as[1]*as[2]])
		view := normalizeUnit(resizeNearest(plane, h0, w0))
		corr, err := Correlation(gray, view)
		if err != nil {
			return nil, err
		}
		edgeCorr, err := Correlation(grayEdges, edgeMap(view))
		if err != nil {
			return nil, err
		}
		if edgeCorr > best.EdgeCorrelation {
			best.EdgeCorrelation = edgeCorr
		}
		if corr > best.Correlation {
			psnr, err := PSNR(gray, view)
			if err != nil {
				return nil, err
			}
			ssim, err := SSIM(gray, view)
			if err != nil {
				return nil, err
			}
			best.Correlation, best.PSNRdB, best.SSIM = corr, psnr, ssim
		}
	}
	return best, nil
}
