package privacy

import (
	"fmt"
	"path/filepath"

	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/tensor"
)

// Fig4Stage is one column of the paper's Fig 4.
type Fig4Stage struct {
	// Name labels the stage: "original", "conv-l1", "l1" (conv+pool).
	Name string
	// Leak holds the best-channel leakage metrics vs the original.
	Leak LeakReport
}

// Fig4Result is the per-image outcome of the Fig-4 experiment.
type Fig4Result struct {
	Stages []Fig4Stage
}

// Monotone reports whether fine-detail leakage (edge correlation, the
// component max-pooling removes) strictly decreases across the stages —
// invariant #5 from DESIGN.md.
func (r *Fig4Result) Monotone() bool {
	for i := 1; i < len(r.Stages); i++ {
		if r.Stages[i].Leak.EdgeCorrelation >= r.Stages[i-1].Leak.EdgeCorrelation {
			return false
		}
	}
	return true
}

// RunFig4 reproduces Fig 4 for one image: it captures the image itself
// ("original"), the activations after the first Conv2D ("conv-l1" —
// Fig 4(b)), and after the full first block including max-pooling ("l1" —
// Fig 4(c)), computing leakage metrics for each. When outDir is non-empty
// the three stages are also written as PNGs (original.png, conv_l1.png,
// l1.png).
//
// model must be a Fig-3 CNN whose first block is Conv2D → (optional
// BatchNorm) → ReLU → MaxPool2D, which BuildPaperCNN guarantees.
func RunFig4(model *nn.PaperCNN, img *tensor.Tensor, outDir string) (*Fig4Result, error) {
	s := img.Shape()
	if len(s) != 3 {
		return nil, fmt.Errorf("privacy: RunFig4 wants a (C,H,W) image, got %v", s)
	}
	if model.MaxCut() < 1 {
		return nil, fmt.Errorf("privacy: model has no first block")
	}
	batch := img.Reshape(append([]int{1}, s...)...)

	layers := model.Net.Layers()
	blockEnd, err := model.CutIndex(1)
	if err != nil {
		return nil, err
	}
	// Forward through the first block, capturing after the first Conv2D
	// and after the block's final layer (the max-pool).
	var afterConv, afterBlock *tensor.Tensor
	x := batch
	for i := 0; i < blockEnd; i++ {
		x = layers[i].Forward(x, false)
		if _, isConv := layers[i].(*nn.Conv2D); isConv && afterConv == nil {
			afterConv = x
		}
	}
	afterBlock = x
	if afterConv == nil {
		return nil, fmt.Errorf("privacy: first block has no Conv2D layer")
	}

	drop := func(t *tensor.Tensor) *tensor.Tensor {
		ts := t.Shape()
		return t.Reshape(ts[1:]...)
	}
	convAct := drop(afterConv)
	blockAct := drop(afterBlock)

	// Original leaks perfectly against itself by construction.
	origLeak := LeakReport{Correlation: 1, PSNRdB: 100, SSIM: 1, EdgeCorrelation: 1}
	convLeak, err := BestChannelLeak(img, convAct)
	if err != nil {
		return nil, err
	}
	blockLeak, err := BestChannelLeak(img, blockAct)
	if err != nil {
		return nil, err
	}

	if outDir != "" {
		if err := SaveImagePNG(img, filepath.Join(outDir, "original.png")); err != nil {
			return nil, err
		}
		if err := SaveActivationGridPNG(convAct, 4, filepath.Join(outDir, "conv_l1.png")); err != nil {
			return nil, err
		}
		if err := SaveActivationGridPNG(blockAct, 4, filepath.Join(outDir, "l1.png")); err != nil {
			return nil, err
		}
	}
	return &Fig4Result{Stages: []Fig4Stage{
		{Name: "original", Leak: origLeak},
		{Name: "conv-l1", Leak: *convLeak},
		{Name: "l1", Leak: *blockLeak},
	}}, nil
}
