package privacy

import (
	"testing"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
)

// TestAvgPoolMoreInvertibleThanMaxPool is the pooling-nonlinearity
// ablation behind Fig 4. The paper credits *max*-pooling with hiding
// images. A passive per-channel view does not separate the two pooling
// types cleanly (max preserves local contrast, avg blurs), but
// invertibility does: average pooling is a linear map, so a trained
// reconstruction decoder recovers the input better through conv+avgpool
// than through conv+maxpool with identical convolution weights.
func TestAvgPoolMoreInvertibleThanMaxPool(t *testing.T) {
	r := mathx.NewRNG(1)
	conv, err := nn.NewConv2D(nn.Conv2DConfig{
		Name: "c1", In: 3, Out: 6, KernelH: 3, KernelW: 3, SamePad: true,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	relu := nn.NewReLU("r1")
	maxPool, err := nn.NewMaxPool2D("pmax", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	avgPool, err := nn.NewAvgPool2D("pavg", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxStack, err := nn.NewSequential("conv-max", conv, relu, maxPool)
	if err != nil {
		t.Fatal(err)
	}
	avgStack, err := nn.NewSequential("conv-avg", conv, relu, avgPool)
	if err != nil {
		t.Fatal(err)
	}

	gen := data.SynthCIFAR{Height: 8, Width: 8, Classes: 4, Noise: 0.03}
	aux, err := gen.Generate(96, 11)
	if err != nil {
		t.Fatal(err)
	}
	holdout, err := gen.Generate(16, 12)
	if err != nil {
		t.Fatal(err)
	}

	cfg := AttackConfig{Seed: 13, Steps: 150, BatchSize: 16, LR: 0.005, Hidden: 64}
	resMax, err := ReconstructionAttack(cfg, maxStack, aux, holdout)
	if err != nil {
		t.Fatal(err)
	}
	resAvg, err := ReconstructionAttack(cfg, avgStack, aux, holdout)
	if err != nil {
		t.Fatal(err)
	}
	if resAvg.MeanCorrelation <= resMax.MeanCorrelation {
		t.Fatalf("avg-pool reconstruction (corr %.3f) not better than max-pool (corr %.3f) — linearity ablation failed",
			resAvg.MeanCorrelation, resMax.MeanCorrelation)
	}
}
