package privacy

import (
	"fmt"

	"github.com/stsl/stsl/internal/data"
	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/nn"
	"github.com/stsl/stsl/internal/opt"
	"github.com/stsl/stsl/internal/tensor"
)

// AttackConfig parameterises the reconstruction attack: an adversary at
// the server trains a decoder from observed activations back to raw
// images, using an auxiliary dataset drawn from the same distribution
// (the strong "informed adversary" model).
type AttackConfig struct {
	// Seed drives decoder initialisation.
	Seed uint64
	// Steps is the number of SGD steps (default 300).
	Steps int
	// BatchSize is the attack batch size (default 16).
	BatchSize int
	// LR is the decoder learning rate (default 0.01, Adam).
	LR float64
	// Hidden is the decoder's hidden width (default 128).
	Hidden int
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.Steps == 0 {
		c.Steps = 300
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.Hidden == 0 {
		c.Hidden = 128
	}
	return c
}

// AttackResult reports the reconstruction fidelity the adversary reached.
type AttackResult struct {
	// TrainMSE is the decoder's final training loss.
	TrainMSE float64
	// MeanPSNR is the reconstruction PSNR over the held-out images
	// (higher = more leaked).
	MeanPSNR float64
	// MeanCorrelation is the mean absolute pixel correlation between
	// original and reconstruction on held-out images.
	MeanCorrelation float64
}

// ReconstructionAttack trains a two-layer MLP decoder mapping the client
// stack's activations back to raw pixels and reports fidelity on held-out
// data. clientStack is the end-system's private stack (it is used in
// inference mode only, as an oracle the adversary can query — e.g. a
// colluding client). aux provides the adversary's auxiliary examples;
// holdout measures attack quality.
func ReconstructionAttack(cfg AttackConfig, clientStack *nn.Sequential, aux, holdout *data.Dataset) (*AttackResult, error) {
	cfg = cfg.withDefaults()
	if aux.Len() == 0 || holdout.Len() == 0 {
		return nil, fmt.Errorf("privacy: attack needs non-empty aux and holdout sets")
	}
	imgShape := aux.X.Shape()
	imgDim := imgShape[1] * imgShape[2] * imgShape[3]

	// Probe the activation dimensionality.
	probe := clientStack.Forward(aux.Subset([]int{0}).X, false)
	actDim := probe.Size()

	r := mathx.NewRNG(cfg.Seed)
	d1, err := nn.NewDense("att1", actDim, cfg.Hidden, nil, r)
	if err != nil {
		return nil, err
	}
	d2, err := nn.NewDense("att2", cfg.Hidden, imgDim, nil, r)
	if err != nil {
		return nil, err
	}
	decoder, err := nn.NewSequential("decoder", d1, nn.NewReLU("att_relu"), d2)
	if err != nil {
		return nil, err
	}
	optim, err := opt.NewAdam(opt.Config{LR: cfg.LR})
	if err != nil {
		return nil, err
	}
	batcher, err := data.NewBatcher(aux, cfg.BatchSize, mathx.NewRNG(cfg.Seed+1))
	if err != nil {
		return nil, err
	}

	lastLoss := 0.0
	for step := 0; step < cfg.Steps; step++ {
		batch, ok := batcher.Next()
		if !ok {
			batch, _ = batcher.Next()
		}
		act := clientStack.Forward(batch.X, false)
		flatAct := act.Reshape(act.Dim(0), -1)
		target := batch.X.Reshape(batch.X.Dim(0), -1)
		decoder.ZeroGrad()
		rec := decoder.Forward(flatAct, true)
		loss, grad, err := nn.MSE(rec, target)
		if err != nil {
			return nil, err
		}
		decoder.Backward(grad)
		optim.Step(decoder.Params())
		lastLoss = loss
	}

	// Evaluate on held-out images.
	var sumPSNR, sumCorr float64
	n := holdout.Len()
	for i := 0; i < n; i++ {
		one := holdout.Subset([]int{i})
		act := clientStack.Forward(one.X, false)
		rec := decoder.Forward(act.Reshape(1, -1), false)
		orig := one.X.Reshape(imgShape[1], imgShape[2], imgShape[3])
		recImg := rec.Reshape(imgShape[1], imgShape[2], imgShape[3])
		recImg.ApplyInPlace(func(v float64) float64 { return mathx.Clamp(v, 0, 1) })
		p, err := PSNR(flattenGray(orig), flattenGray(recImg))
		if err != nil {
			return nil, err
		}
		c, err := Correlation(flattenGray(orig), flattenGray(recImg))
		if err != nil {
			return nil, err
		}
		sumPSNR += p
		sumCorr += c
	}
	return &AttackResult{
		TrainMSE:        lastLoss,
		MeanPSNR:        sumPSNR / float64(n),
		MeanCorrelation: sumCorr / float64(n),
	}, nil
}

func flattenGray(img *tensor.Tensor) *tensor.Tensor {
	return grayscale(img)
}
