package privacy

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"os"
	"path/filepath"

	"github.com/stsl/stsl/internal/tensor"
)

// SaveImagePNG writes a (3,H,W) or (1,H,W) tensor in [0,1] as a PNG.
// Values are clamped; 3-channel tensors render as RGB, single-channel as
// grayscale.
func SaveImagePNG(t *tensor.Tensor, path string) error {
	s := t.Shape()
	if len(s) != 3 || (s[0] != 1 && s[0] != 3) {
		return fmt.Errorf("privacy: SaveImagePNG wants (1|3,H,W), got %v", s)
	}
	c, h, w := s[0], s[1], s[2]
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	data := t.Data()
	px := func(ch, y, x int) uint8 {
		v := data[ch*h*w+y*w+x]
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint8(v*255 + 0.5)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b uint8
			if c == 3 {
				r, g, b = px(0, y, x), px(1, y, x), px(2, y, x)
			} else {
				r = px(0, y, x)
				g, b = r, r
			}
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("privacy: mkdir for %s: %w", path, err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("privacy: create %s: %w", path, err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("privacy: encode %s: %w", path, err)
	}
	return nil
}

// SaveActivationGridPNG renders every channel of a (C,H,W) activation as
// a tiled grayscale grid (cols channels per row), each channel normalised
// to [0,1] independently — the conventional feature-map visualisation of
// Fig 4(b) and 4(c).
func SaveActivationGridPNG(act *tensor.Tensor, cols int, path string) error {
	s := act.Shape()
	if len(s) != 3 {
		return fmt.Errorf("privacy: SaveActivationGridPNG wants (C,H,W), got %v", s)
	}
	if cols <= 0 {
		cols = 4
	}
	c, h, w := s[0], s[1], s[2]
	rows := (c + cols - 1) / cols
	const gap = 1
	gridH := rows*h + (rows-1)*gap
	gridW := cols*w + (cols-1)*gap
	grid := tensor.New(1, gridH, gridW)
	for ch := 0; ch < c; ch++ {
		plane := tensor.New(h, w)
		copy(plane.Data(), act.Data()[ch*h*w:(ch+1)*h*w])
		norm := normalizeUnit(plane)
		ty := (ch / cols) * (h + gap)
		tx := (ch % cols) * (w + gap)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				grid.Set(norm.At(y, x), 0, ty+y, tx+x)
			}
		}
	}
	return SaveImagePNG(grid, path)
}
