package nn

import (
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestDirectConvMatchesIm2Col(t *testing.T) {
	// Property: the naive direct convolution and the im2col lowering
	// agree on random geometries — two independent implementations
	// cross-checking each other.
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		cfg := Conv2DConfig{
			Name:    "c",
			In:      1 + r.Intn(3),
			Out:     1 + r.Intn(4),
			KernelH: 1 + r.Intn(3), KernelW: 1 + r.Intn(3),
			StrideH: 1 + r.Intn(2), StrideW: 1 + r.Intn(2),
			PadH: r.Intn(2), PadW: r.Intn(2),
		}
		conv, err := NewConv2D(cfg, r)
		if err != nil {
			return true // invalid random config, skip
		}
		h, w := cfg.KernelH+2+r.Intn(5), cfg.KernelW+2+r.Intn(5)
		x := tensor.Randn(r, 1, 1+r.Intn(2), cfg.In, h, w)
		want := conv.Forward(x, false)
		got := DirectConvForward(conv, x)
		return got.Equal(want, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectConvPanicsOnBadInput(t *testing.T) {
	r := mathx.NewRNG(1)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 3, Out: 4, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong channel count did not panic")
		}
	}()
	DirectConvForward(conv, tensor.New(1, 2, 8, 8))
}
