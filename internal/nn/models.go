package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
)

// PaperCNNConfig parameterises BuildPaperCNN. The zero value is completed
// by Defaults to the exact Fig-3 architecture: five L-blocks of
// Conv2D(3×3, same padding) + ReLU + MaxPool2D(2×2, stride 2) with 16, 32,
// 64, 128 and 256 filters over 32×32×3 input, then Dense(512) + ReLU +
// Dense(10).
type PaperCNNConfig struct {
	// InChannels, Height, Width describe the input image (default 3×32×32).
	InChannels, Height, Width int
	// Filters lists the Conv2D filter counts for L1..L5.
	Filters []int
	// Hidden is the width of the first dense layer (default 512).
	Hidden int
	// Classes is the output dimension (default 10).
	Classes int
	// Dropout, when positive, inserts a dropout layer before the final
	// dense layer (an extension; the paper's network has none).
	Dropout float64
	// BatchNorm, when true, inserts BatchNorm2D after every convolution
	// (an extension used by ablation benchmarks).
	BatchNorm bool
}

// Defaults returns cfg with unset fields replaced by the paper's values.
func (cfg PaperCNNConfig) Defaults() PaperCNNConfig {
	if cfg.InChannels == 0 {
		cfg.InChannels = 3
	}
	if cfg.Height == 0 {
		cfg.Height = 32
	}
	if cfg.Width == 0 {
		cfg.Width = 32
	}
	if cfg.Filters == nil {
		cfg.Filters = []int{16, 32, 64, 128, 256}
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = 512
	}
	if cfg.Classes == 0 {
		cfg.Classes = 10
	}
	return cfg
}

// PaperCNN is the Fig-3 network together with the block boundaries needed
// to split it: Blocks[i] gives, for cut point L(i+1), the number of leading
// layers that live on the end-system.
type PaperCNN struct {
	// Net is the full monolithic network.
	Net *Sequential
	// Blocks[k] is the index into Net.Layers() one past the end of block
	// L(k+1); cutting after L_k means the first Blocks[k-1] layers are
	// client-side. Blocks has one entry per conv block.
	Blocks []int
	// Config echoes the (defaulted) construction parameters.
	Config PaperCNNConfig
}

// BuildPaperCNN constructs the Fig-3 CNN with weights initialised from r.
func BuildPaperCNN(cfg PaperCNNConfig, r *mathx.RNG) (*PaperCNN, error) {
	cfg = cfg.Defaults()
	if len(cfg.Filters) == 0 {
		return nil, fmt.Errorf("nn: PaperCNN needs at least one conv block")
	}
	h, w := cfg.Height, cfg.Width
	var layers []Layer
	var blocks []int
	inC := cfg.InChannels
	for i, f := range cfg.Filters {
		if h < 2 || w < 2 {
			return nil, fmt.Errorf("nn: PaperCNN input %dx%d too small for %d pooling blocks", cfg.Height, cfg.Width, len(cfg.Filters))
		}
		conv, err := NewConv2D(Conv2DConfig{
			Name: fmt.Sprintf("conv%d", i+1),
			In:   inC, Out: f,
			KernelH: 3, KernelW: 3,
			SamePad: true,
		}, r)
		if err != nil {
			return nil, err
		}
		layers = append(layers, conv)
		if cfg.BatchNorm {
			bn, err := NewBatchNorm2D(fmt.Sprintf("bn%d", i+1), f)
			if err != nil {
				return nil, err
			}
			layers = append(layers, bn)
		}
		layers = append(layers, NewReLU(fmt.Sprintf("relu%d", i+1)))
		pool, err := NewMaxPool2D(fmt.Sprintf("pool%d", i+1), 2, 2, 0, 0)
		if err != nil {
			return nil, err
		}
		layers = append(layers, pool)
		blocks = append(blocks, len(layers))
		inC = f
		h /= 2
		w /= 2
	}
	layers = append(layers, NewFlatten("flatten"))
	flatDim := inC * h * w
	fc1, err := NewDense("fc1", flatDim, cfg.Hidden, nil, r)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc1, NewReLU("relu_fc1"))
	if cfg.Dropout > 0 {
		drop, err := NewDropout("dropout", cfg.Dropout, r.Split())
		if err != nil {
			return nil, err
		}
		layers = append(layers, drop)
	}
	fc2, err := NewDense("fc2", cfg.Hidden, cfg.Classes, nil, r)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc2)

	net, err := NewSequential("paper-cnn", layers...)
	if err != nil {
		return nil, err
	}
	return &PaperCNN{Net: net, Blocks: blocks, Config: cfg}, nil
}

// CutIndex translates a cut point expressed in paper notation (cut=k means
// blocks L1..Lk run on the end-system; cut=0 means everything runs on the
// server) to a layer index into Net.Layers().
func (p *PaperCNN) CutIndex(cut int) (int, error) {
	if cut < 0 || cut > len(p.Blocks) {
		return 0, fmt.Errorf("nn: cut %d out of range [0,%d]", cut, len(p.Blocks))
	}
	if cut == 0 {
		return 0, nil
	}
	return p.Blocks[cut-1], nil
}

// MaxCut returns the deepest valid cut point (the number of conv blocks).
func (p *PaperCNN) MaxCut() int { return len(p.Blocks) }
