package nn

import (
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// TestLayerShapeContract verifies, for every layer type, that OutShape's
// prediction matches the actual Forward output shape — the contract the
// split framework relies on when it wires client and server stacks.
func TestLayerShapeContract(t *testing.T) {
	r := mathx.NewRNG(1)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 3, Out: 8, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	convStride, err := NewConv2D(Conv2DConfig{Name: "cs", In: 3, Out: 4, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D("p", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm2D("b", 3)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := NewDropout("dr", 0.5, r)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		layer Layer
		in    []int // per-sample input shape
	}{
		{"conv-same", conv, []int{3, 16, 16}},
		{"conv-strided", convStride, []int{3, 16, 16}},
		{"pool", pool, []int{3, 16, 16}},
		{"batchnorm", bn, []int{3, 8, 8}},
		{"relu", NewReLU("r"), []int{3, 8, 8}},
		{"tanh", NewTanh("t"), []int{5}},
		{"flatten", NewFlatten("f"), []int{3, 4, 4}},
		{"dropout", drop, []int{7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.layer.OutShape(tc.in)
			if err != nil {
				t.Fatal(err)
			}
			batchShape := append([]int{2}, tc.in...)
			x := tensor.Randn(mathx.NewRNG(2), 1, batchShape...)
			got := tc.layer.Forward(x, false).Shape()
			if got[0] != 2 {
				t.Fatalf("batch dim lost: %v", got)
			}
			if len(got)-1 != len(want) {
				t.Fatalf("rank mismatch: forward %v vs OutShape %v", got, want)
			}
			for i, d := range want {
				if got[i+1] != d {
					t.Fatalf("dim %d: forward %v vs OutShape %v", i, got, want)
				}
			}
		})
	}
}

// TestLayerBackwardShapeContract verifies ∂L/∂input has the input's shape
// for every layer — required for gradients to flow across the cut.
func TestLayerBackwardShapeContract(t *testing.T) {
	r := mathx.NewRNG(3)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 2, Out: 4, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewMaxPool2D("p", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewDense("d", 8, 3, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	bn, err := NewBatchNorm2D("b", 2)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		layer Layer
		in    []int // full batch shape
	}{
		{"conv", conv, []int{2, 2, 6, 6}},
		{"pool", pool, []int{2, 2, 6, 6}},
		{"dense", dense, []int{3, 8}},
		{"batchnorm", bn, []int{2, 2, 4, 4}},
		{"relu", NewReLU("r"), []int{2, 5}},
		{"flatten", NewFlatten("f"), []int{2, 2, 3, 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := tensor.Randn(mathx.NewRNG(4), 1, tc.in...)
			y := tc.layer.Forward(x, true)
			dx := tc.layer.Backward(y.Clone())
			if !dx.SameShape(x) {
				t.Fatalf("backward shape %v != input shape %v", dx.Shape(), x.Shape())
			}
		})
	}
}

// TestBackwardWithoutForwardPanics pins the misuse contract for all
// cache-dependent layers.
func TestBackwardWithoutForwardPanics(t *testing.T) {
	r := mathx.NewRNG(5)
	conv, _ := NewConv2D(Conv2DConfig{Name: "c", In: 1, Out: 1, KernelH: 1, KernelW: 1}, r)
	pool, _ := NewMaxPool2D("p", 2, 2, 0, 0)
	dense, _ := NewDense("d", 2, 2, nil, r)
	bn, _ := NewBatchNorm2D("b", 1)

	layers := []Layer{conv, pool, dense, bn, NewReLU("r"), NewTanh("t"), NewFlatten("f")}
	for _, l := range layers {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Backward without Forward did not panic", l.Name())
				}
			}()
			l.Backward(tensor.New(1, 1))
		})
	}
}

// TestEvalForwardDoesNotArmBackward verifies inference-mode forwards do
// not leave stale caches that a later Backward could silently consume.
func TestEvalForwardDoesNotArmBackward(t *testing.T) {
	r := mathx.NewRNG(6)
	dense, err := NewDense("d", 4, 2, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 2, 4)
	dense.Forward(x, false)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward after eval Forward did not panic")
		}
	}()
	dense.Backward(tensor.New(2, 2))
}

// TestSequentialOfSequentials checks that Sequential composes as a Layer.
func TestSequentialOfSequentials(t *testing.T) {
	r := mathx.NewRNG(7)
	d1, _ := NewDense("d1", 4, 8, nil, r)
	d2, _ := NewDense("d2", 8, 3, nil, r)
	inner1, err := NewSequential("inner1", d1, NewReLU("r1"))
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := NewSequential("inner2", d2)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := NewSequential("outer", inner1, inner2)
	if err != nil {
		t.Fatal(err)
	}
	out, err := outer.OutShape([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 {
		t.Fatalf("OutShape = %v", out)
	}
	x := tensor.Randn(r, 1, 2, 4)
	y := outer.Forward(x, true)
	dx := outer.Backward(y)
	if !dx.SameShape(x) {
		t.Fatal("nested backward shape mismatch")
	}
	if got := len(outer.Params()); got != 4 {
		t.Fatalf("nested params = %d, want 4", got)
	}
}

// TestEmptySequentialIsIdentity matters because cut=0 gives end-systems
// an empty stack.
func TestEmptySequentialIsIdentity(t *testing.T) {
	seq, err := NewSequential("empty")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(mathx.NewRNG(8), 1, 2, 3)
	if !seq.Forward(x, true).Equal(x, 0) {
		t.Fatal("empty forward not identity")
	}
	if !seq.Backward(x).Equal(x, 0) {
		t.Fatal("empty backward not identity")
	}
	if len(seq.Params()) != 0 {
		t.Fatal("empty sequential has params")
	}
	out, err := seq.OutShape([]int{2, 3})
	if err != nil || out[0] != 2 || out[1] != 3 {
		t.Fatalf("empty OutShape = %v, %v", out, err)
	}
}
