package nn

import (
	"math"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Initializer fills a freshly allocated weight tensor. fanIn and fanOut are
// the layer's input and output connectivity counts.
type Initializer func(r *mathx.RNG, fanIn, fanOut int, shape ...int) *tensor.Tensor

// HeNormal returns the He (Kaiming) normal initializer, the standard choice
// ahead of ReLU nonlinearities: N(0, sqrt(2/fanIn)).
func HeNormal() Initializer {
	return func(r *mathx.RNG, fanIn, _ int, shape ...int) *tensor.Tensor {
		return tensor.Randn(r, math.Sqrt(2/float64(fanIn)), shape...)
	}
}

// XavierUniform returns the Glorot uniform initializer,
// U(-a, a) with a = sqrt(6/(fanIn+fanOut)).
func XavierUniform() Initializer {
	return func(r *mathx.RNG, fanIn, fanOut int, shape ...int) *tensor.Tensor {
		a := math.Sqrt(6 / float64(fanIn+fanOut))
		return tensor.Rand(r, -a, a, shape...)
	}
}

// ZeroInit returns an all-zeros initializer (used for biases).
func ZeroInit() Initializer {
	return func(_ *mathx.RNG, _, _ int, shape ...int) *tensor.Tensor {
		return tensor.New(shape...)
	}
}
