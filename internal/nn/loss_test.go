package nn

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestSoftmaxCrossEntropyUniformLogits(t *testing.T) {
	// Equal logits: loss = log(classes), independent of labels.
	logits := tensor.New(4, 10)
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{0, 3, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-math.Log(10)) > 1e-12 {
		t.Fatalf("loss = %v, want log(10) = %v", loss, math.Log(10))
	}
	if !grad.SameShape(logits) {
		t.Fatalf("grad shape = %v", grad.Shape())
	}
	// Gradient rows sum to zero (softmax minus one-hot).
	g := grad.Data()
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 10; j++ {
			s += g[i*10+j]
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyPerfectPrediction(t *testing.T) {
	logits := tensor.New(1, 3)
	logits.Set(100, 0, 1) // overwhelming confidence in class 1
	loss, _, err := SoftmaxCrossEntropy(logits, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-10 {
		t.Fatalf("confident correct prediction has loss %v", loss)
	}
}

func TestSoftmaxCrossEntropyErrors(t *testing.T) {
	if _, _, err := SoftmaxCrossEntropy(tensor.New(2, 3), []int{0}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(tensor.New(2, 3), []int{0, 3}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(tensor.New(6), []int{0}); err == nil {
		t.Fatal("rank-1 logits accepted")
	}
}

func TestSoftmaxCrossEntropyGradientNumeric(t *testing.T) {
	// Central-difference check of ∂loss/∂logits.
	r := mathx.NewRNG(1)
	logits := tensor.Randn(r, 1, 3, 5)
	labels := []int{0, 2, 4}
	_, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	data := logits.Data()
	for i := range data {
		orig := data[i]
		data[i] = orig + eps
		lp, _, _ := SoftmaxCrossEntropy(logits, labels)
		data[i] = orig - eps
		lm, _, _ := SoftmaxCrossEntropy(logits, labels)
		data[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-grad.Data()[i]) > 1e-6 {
			t.Fatalf("logit %d: analytic %v vs numeric %v", i, grad.Data()[i], numeric)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	// Huge logits must not produce NaN/Inf.
	logits := tensor.FromSlice([]float64{1e4, -1e4, 0}, 1, 3)
	loss, grad, err := SoftmaxCrossEntropy(logits, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	for _, v := range grad.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("unstable grad %v", grad)
		}
	}
}

func TestSoftmaxCrossEntropyQuickLossPositive(t *testing.T) {
	f := func(seed uint64) bool {
		r := mathx.NewRNG(seed)
		n, c := 1+r.Intn(8), 2+r.Intn(8)
		logits := tensor.Randn(r, 3, n, c)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = r.Intn(c)
		}
		loss, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil || loss < 0 {
			return false
		}
		// Each row of the gradient sums to ~0.
		g := grad.Data()
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < c; j++ {
				s += g[i*c+j]
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPredict(t *testing.T) {
	logits := tensor.FromSlice([]float64{
		0, 3, 1,
		5, 2, 2,
	}, 2, 3)
	got := Predict(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Predict = %v", got)
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 2)
	target := tensor.FromSlice([]float64{0, 4}, 2)
	loss, grad, err := MSE(pred, target)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-(1+4)/2.0) > 1e-12 {
		t.Fatalf("MSE loss = %v", loss)
	}
	want := tensor.FromSlice([]float64{1, -2}, 2) // 2*(p-t)/n
	if !grad.Equal(want, 1e-12) {
		t.Fatalf("MSE grad = %v, want %v", grad, want)
	}
	if _, _, err := MSE(pred, tensor.New(3)); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
