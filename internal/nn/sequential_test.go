package nn

import (
	"bytes"
	"strings"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func smallMLP(t *testing.T, r *mathx.RNG) *Sequential {
	t.Helper()
	d1, err := NewDense("d1", 4, 8, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDense("d2", 8, 3, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewSequential("mlp", d1, NewReLU("r1"), d2)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestSequentialRejectsDuplicatesAndNil(t *testing.T) {
	r := mathx.NewRNG(1)
	d1, _ := NewDense("d", 2, 2, nil, r)
	d2, _ := NewDense("d", 2, 2, nil, r)
	if _, err := NewSequential("s", d1, d2); err == nil {
		t.Fatal("duplicate layer names accepted")
	}
	if _, err := NewSequential("s", d1, nil); err == nil {
		t.Fatal("nil layer accepted")
	}
}

func TestSequentialForwardMatchesManualChain(t *testing.T) {
	r := mathx.NewRNG(2)
	seq := smallMLP(t, r)
	x := tensor.Randn(r, 1, 5, 4)
	want := x
	for _, l := range seq.Layers() {
		want = l.Forward(want, false)
	}
	got := seq.Forward(x, false)
	if !got.Equal(want, 0) {
		t.Fatal("sequential forward differs from manual chain")
	}
}

func TestSequentialGradients(t *testing.T) {
	r := mathx.NewRNG(3)
	seq := smallMLP(t, r)
	x := tensor.Randn(r, 1, 2, 4)
	if _, err := CheckLayerGradients(seq, x, 1e-5, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOutShapeAndParamCount(t *testing.T) {
	r := mathx.NewRNG(4)
	seq := smallMLP(t, r)
	out, err := seq.OutShape([]int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("OutShape = %v", out)
	}
	// d1: 4*8+8, d2: 8*3+3.
	if got := seq.ParamCount(); got != 4*8+8+8*3+3 {
		t.Fatalf("ParamCount = %d", got)
	}
	if _, err := seq.OutShape([]int{5}); err == nil {
		t.Fatal("bad input shape accepted")
	}
}

func TestSequentialZeroGrad(t *testing.T) {
	r := mathx.NewRNG(5)
	seq := smallMLP(t, r)
	x := tensor.Randn(r, 1, 2, 4)
	y := seq.Forward(x, true)
	seq.Backward(y)
	dirty := false
	for _, p := range seq.Params() {
		if p.Grad.MaxAbs() > 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("backward accumulated no gradient")
	}
	seq.ZeroGrad()
	for _, p := range seq.Params() {
		if p.Grad.MaxAbs() != 0 {
			t.Fatalf("param %s grad not cleared", p.Name)
		}
	}
}

func TestSaveLoadWeightsRoundTrip(t *testing.T) {
	r := mathx.NewRNG(6)
	a := smallMLP(t, r)
	b := smallMLP(t, mathx.NewRNG(7)) // different weights

	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	if err := b.LoadWeights(&buf); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 3, 4)
	if !a.Forward(x, false).Equal(b.Forward(x, false), 0) {
		t.Fatal("loaded network computes differently")
	}
}

func TestLoadWeightsRejectsMismatch(t *testing.T) {
	r := mathx.NewRNG(8)
	a := smallMLP(t, r)
	var buf bytes.Buffer
	if err := a.SaveWeights(&buf); err != nil {
		t.Fatal(err)
	}
	// A structurally different network must refuse the file.
	d, _ := NewDense("other", 4, 4, nil, r)
	other, _ := NewSequential("o", d)
	if err := other.LoadWeights(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched load accepted")
	}
}

func TestPaperCNNArchitecture(t *testing.T) {
	r := mathx.NewRNG(9)
	m, err := BuildPaperCNN(PaperCNNConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Net.OutShape([]int{3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 10 {
		t.Fatalf("OutShape = %v, want [10]", out)
	}
	if m.MaxCut() != 5 {
		t.Fatalf("MaxCut = %d", m.MaxCut())
	}
	// Fig 3: filters 16/32/64/128/256, input 32x32 halved 5 times → 1x1x256.
	summary, err := m.Net.Summary([]int{3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"conv1", "pool5", "[256 1 1]", "fc1", "fc2"} {
		if !strings.Contains(summary, want) {
			t.Fatalf("summary missing %q:\n%s", want, summary)
		}
	}
	// Forward pass shape.
	x := tensor.Randn(r, 1, 2, 3, 32, 32)
	y := m.Net.Forward(x, false)
	if s := y.Shape(); s[0] != 2 || s[1] != 10 {
		t.Fatalf("forward shape = %v", s)
	}
}

func TestPaperCNNCutIndex(t *testing.T) {
	r := mathx.NewRNG(10)
	m, err := BuildPaperCNN(PaperCNNConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	// cut=0 → no client layers.
	if idx, err := m.CutIndex(0); err != nil || idx != 0 {
		t.Fatalf("CutIndex(0) = %d, %v", idx, err)
	}
	// cut=1 → conv1, relu1, pool1 (3 layers).
	if idx, err := m.CutIndex(1); err != nil || idx != 3 {
		t.Fatalf("CutIndex(1) = %d, %v", idx, err)
	}
	if idx, err := m.CutIndex(5); err != nil || idx != 15 {
		t.Fatalf("CutIndex(5) = %d, %v", idx, err)
	}
	if _, err := m.CutIndex(6); err == nil {
		t.Fatal("CutIndex(6) accepted")
	}
	if _, err := m.CutIndex(-1); err == nil {
		t.Fatal("CutIndex(-1) accepted")
	}
}

func TestPaperCNNSmallVariant(t *testing.T) {
	r := mathx.NewRNG(11)
	m, err := BuildPaperCNN(PaperCNNConfig{
		Height: 16, Width: 16,
		Filters: []int{8, 16},
		Hidden:  32,
		Classes: 4,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Net.OutShape([]int{3, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 {
		t.Fatalf("OutShape = %v", out)
	}
}

func TestPaperCNNRejectsTooManyBlocks(t *testing.T) {
	r := mathx.NewRNG(12)
	_, err := BuildPaperCNN(PaperCNNConfig{
		Height: 8, Width: 8,
		Filters: []int{4, 4, 4, 4, 4}, // 8x8 cannot be halved 5 times
	}, r)
	if err == nil {
		t.Fatal("oversized block count accepted")
	}
}

func TestPaperCNNWithExtensions(t *testing.T) {
	r := mathx.NewRNG(13)
	m, err := BuildPaperCNN(PaperCNNConfig{
		Height: 8, Width: 8,
		Filters:   []int{4, 8},
		Hidden:    16,
		Dropout:   0.5,
		BatchNorm: true,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 2, 3, 8, 8)
	y := m.Net.Forward(x, true)
	if s := y.Shape(); s[1] != 10 {
		t.Fatalf("forward shape = %v", s)
	}
	// Backward must thread through bn + dropout without panicking.
	loss, grad, err := SoftmaxCrossEntropy(y, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	m.Net.Backward(grad)
}

func TestSequentialTrainingReducesLoss(t *testing.T) {
	// A tiny end-to-end sanity check: a 2-layer MLP must fit 8 random
	// points in a few hundred SGD steps.
	r := mathx.NewRNG(14)
	seq := smallMLP(t, r)
	x := tensor.Randn(r, 1, 8, 4)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = r.Intn(3)
	}
	first, last := 0.0, 0.0
	for step := 0; step < 300; step++ {
		seq.ZeroGrad()
		logits := seq.Forward(x, true)
		loss, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 {
			first = loss
		}
		last = loss
		seq.Backward(grad)
		for _, p := range seq.Params() {
			p.Value.AXPY(-0.1, p.Grad)
		}
	}
	if last > first/4 {
		t.Fatalf("loss did not drop enough: first %v, last %v", first, last)
	}
}
