package nn

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// MaxPool2D is a max-pooling layer over NCHW input. It has no learnable
// parameters; Backward routes each output gradient to the input position
// that produced the maximum (ties go to the first scanned position, which
// matches the common framework convention).
type MaxPool2D struct {
	name             string
	kernelH, kernelW int
	strideH, strideW int
	// argmax caches, per forward pass, the linear input index chosen for
	// each output element.
	argmax  []int
	inShape []int
}

// NewMaxPool2D constructs a pooling layer. A zero stride defaults to the
// kernel size (non-overlapping pooling), which is the paper's 2×2 usage.
func NewMaxPool2D(name string, kernelH, kernelW, strideH, strideW int) (*MaxPool2D, error) {
	if kernelH <= 0 || kernelW <= 0 {
		return nil, fmt.Errorf("nn: pool %q needs positive kernel, got %dx%d", name, kernelH, kernelW)
	}
	if strideH == 0 {
		strideH = kernelH
	}
	if strideW == 0 {
		strideW = kernelW
	}
	if strideH < 0 || strideW < 0 {
		return nil, fmt.Errorf("nn: pool %q has negative stride", name)
	}
	return &MaxPool2D{name: name, kernelH: kernelH, kernelW: kernelW, strideH: strideH, strideW: strideW}, nil
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.name, "(C,H,W)", in)
	}
	oh := (in[1]-p.kernelH)/p.strideH + 1
	ow := (in[2]-p.kernelW)/p.strideW + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: pool %s yields empty output for input %v", p.name, in)
	}
	return []int{in[0], oh, ow}, nil
}

// Forward implements Layer. Input must be (N, C, H, W).
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := x.Shape()
	if len(s) != 4 {
		panic(shapeErr(p.name, "(N,C,H,W)", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	oh := (h-p.kernelH)/p.strideH + 1
	ow := (w-p.kernelW)/p.strideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: pool %s yields empty output for input %v", p.name, s))
	}
	out := tensor.New(n, c, oh, ow)
	var argmax []int
	if train {
		argmax = make([]int, out.Size())
	}
	src := x.Data()
	dst := out.Data()
	di := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			plane := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.strideH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox * p.strideW
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.kernelH; ky++ {
						rowBase := plane + (iy0+ky)*w + ix0
						for kx := 0; kx < p.kernelW; kx++ {
							if v := src[rowBase+kx]; v > best {
								best = v
								bestIdx = rowBase + kx
							}
						}
					}
					dst[di] = best
					if train {
						argmax[di] = bestIdx
					}
					di++
				}
			}
		}
	}
	if train {
		p.argmax = argmax
		p.inShape = s
	} else {
		p.argmax = nil
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic(fmt.Sprintf("nn: pool %s Backward without training Forward", p.name))
	}
	if grad.Size() != len(p.argmax) {
		panic(shapeErr(p.name, fmt.Sprintf("grad with %d elems", len(p.argmax)), grad.Shape()))
	}
	dx := tensor.New(p.inShape...)
	dst := dx.Data()
	for i, g := range grad.Data() {
		dst[p.argmax[i]] += g
	}
	p.argmax = nil
	return dx
}

var _ Layer = (*MaxPool2D)(nil)
