package nn

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// TestSetDTypeParity trains two identically-seeded MLPs — one on the
// float64 kernels, one switched to float32 via SetDType — and requires
// the loss trajectories to track within 10%: single precision changes
// rounding, not learning.
func TestSetDTypeParity(t *testing.T) {
	build := func() *Sequential {
		r := mathx.NewRNG(42)
		return smallMLP(t, r)
	}
	data := mathx.NewRNG(7)
	const (
		steps = 20
		batch = 8
		lr    = 0.1
	)
	x := tensor.Randn(data, 1, batch, 4)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = data.Intn(3)
	}

	train := func(m *Sequential) []float64 {
		losses := make([]float64, steps)
		for s := 0; s < steps; s++ {
			logits := m.Forward(x, true)
			loss, grad, err := SoftmaxCrossEntropy(logits, labels)
			if err != nil {
				t.Fatal(err)
			}
			losses[s] = loss
			m.Backward(grad)
			for _, p := range m.Params() {
				p.Value.AXPY(-lr, p.Grad)
			}
			m.ZeroGrad()
		}
		return losses
	}

	m64 := build()
	m32 := build()
	m32.SetDType(tensor.Float32)

	l64 := train(m64)
	l32 := train(m32)
	for s := range l64 {
		if diff := math.Abs(l64[s] - l32[s]); diff > 0.1*math.Abs(l64[s]) {
			t.Errorf("step %d: f64 loss %.6f vs f32 loss %.6f (diff %.2f%%)",
				s, l64[s], l32[s], 100*diff/math.Abs(l64[s]))
		}
	}
	if l64[steps-1] >= l64[0] || l32[steps-1] >= l32[0] {
		t.Errorf("training did not reduce loss: f64 %.4f→%.4f, f32 %.4f→%.4f",
			l64[0], l64[steps-1], l32[0], l32[steps-1])
	}
}

// TestSetDTypeRecursesNestedStacks: SetDType reaches layers inside
// nested Sequentials via the optional interface.
func TestSetDTypeRecursesNestedStacks(t *testing.T) {
	r := mathx.NewRNG(5)
	inner := smallMLP(t, r)
	d, err := NewDense("outer", 3, 2, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	outer, err := NewSequential("outer-stack", inner, d)
	if err != nil {
		t.Fatal(err)
	}
	outer.SetDType(tensor.Float32)
	// The inner stack's first dense layer must now run the f32 kernels:
	// its forward output should match MatMul32, not MatMul (they differ
	// in rounding for generic inputs).
	x := tensor.Randn(r, 1, 4, 4)
	d1 := inner.Layers()[0].(*Dense)
	got := d1.Forward(x, false)
	want := tensor.MatMul32(x, d1.weight.Value).AddRowVector(d1.bias.Value)
	if !got.Equal(want, 0) {
		t.Error("nested dense layer did not switch to float32 kernels")
	}
}
