package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/tensor"
)

// Flatten reshapes (N, d1, d2, …) into (N, d1*d2*…), remembering the input
// shape so Backward can restore it.
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.name }

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Flatten) OutShape(in []int) ([]int, error) {
	if len(in) == 0 {
		return nil, shapeErr(l.name, "non-scalar", in)
	}
	return []int{shapeVolume(in)}, nil
}

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := x.Shape()
	if len(s) < 2 {
		panic(shapeErr(l.name, "(N,…)", s))
	}
	if train {
		l.inShape = s
	} else {
		l.inShape = nil
	}
	return x.Reshape(s[0], -1)
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.inShape == nil {
		panic(fmt.Sprintf("nn: flatten %s Backward without training Forward", l.name))
	}
	dx := grad.Reshape(l.inShape...)
	l.inShape = nil
	return dx
}

var _ Layer = (*Flatten)(nil)
