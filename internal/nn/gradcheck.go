package nn

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// GradCheckResult reports the outcome of a numerical gradient check for
// one parameter.
type GradCheckResult struct {
	Param       string
	MaxRelError float64
	Checked     int
}

// CheckLayerGradients verifies a layer's analytic gradients against central
// finite differences. loss is evaluated as 0.5*‖y‖² of the layer output,
// whose exact gradient w.r.t. the output is y itself; this exercises the
// full backward path for both the input and every parameter.
//
// eps is the finite-difference step (1e-5 is a good default for float64);
// tol is the maximum acceptable relative error. It returns one result per
// parameter plus one for the input (named "input"), or an error describing
// the first failing check.
func CheckLayerGradients(l Layer, x *tensor.Tensor, eps, tol float64) ([]GradCheckResult, error) {
	lossOf := func() float64 {
		y := l.Forward(x, true)
		s := 0.0
		for _, v := range y.Data() {
			s += 0.5 * v * v
		}
		return s
	}
	// Analytic pass.
	for _, p := range l.Params() {
		p.ZeroGrad()
	}
	y := l.Forward(x, true)
	dx := l.Backward(y.Clone())

	var results []GradCheckResult

	check := func(name string, value *tensor.Tensor, analytic *tensor.Tensor) error {
		data := value.Data()
		grad := analytic.Data()
		maxRel := 0.0
		// Check every element for small tensors, a strided subset for
		// large ones, so the suite stays fast.
		stride := 1
		if len(data) > 256 {
			stride = len(data) / 256
		}
		checked := 0
		for i := 0; i < len(data); i += stride {
			orig := data[i]
			data[i] = orig + eps
			lp := lossOf()
			data[i] = orig - eps
			lm := lossOf()
			data[i] = orig
			numeric := (lp - lm) / (2 * eps)
			// The 1e-4 floor keeps finite-difference cancellation noise
			// (≈|loss|·1e-16/eps) from failing elements whose true
			// gradient is itself near zero.
			denom := math.Max(math.Abs(numeric)+math.Abs(grad[i]), 1e-4)
			rel := math.Abs(numeric-grad[i]) / denom
			if rel > maxRel {
				maxRel = rel
			}
			if rel > tol {
				return fmt.Errorf("nn: gradcheck %s[%d]: analytic %g vs numeric %g (rel err %g > tol %g)",
					name, i, grad[i], numeric, rel, tol)
			}
			checked++
		}
		results = append(results, GradCheckResult{Param: name, MaxRelError: maxRel, Checked: checked})
		return nil
	}

	if err := check("input", x, dx); err != nil {
		return results, err
	}
	for _, p := range l.Params() {
		if err := check(p.Name, p.Value, p.Grad); err != nil {
			return results, err
		}
	}
	return results, nil
}
