// Package nn implements the neural-network layers, loss, and container
// types needed to train the paper's Fig-3 CNN from scratch: Conv2D (via
// im2col), MaxPool2D, Dense, ReLU, Flatten, Dropout, BatchNorm, and a
// numerically-stable softmax cross-entropy loss.
//
// Layers follow a define-by-run contract: Forward caches whatever it needs
// for the matching Backward call. A layer instance therefore handles one
// batch at a time and is not safe for concurrent use; each end-system in
// the split-learning framework owns its own layer stack.
//
// Tensors flow in NCHW layout (batch, channels, height, width) through the
// convolutional stack and as (batch, features) matrices after Flatten.
package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/tensor"
)

// Param is one learnable tensor together with its gradient accumulator.
// Optimisers mutate Value; Backward accumulates into Grad.
type Param struct {
	// Name identifies the parameter for diagnostics and serialisation,
	// e.g. "conv1/weight".
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter with a zeroed gradient of matching shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{
		Name:  name,
		Value: value,
		Grad:  tensor.New(value.Shape()...),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is one differentiable stage of a network.
//
// Forward consumes a batch and returns the batch output; when train is
// true the layer caches activations needed by Backward and applies
// training-only behaviour (e.g. dropout). Backward consumes ∂L/∂output and
// returns ∂L/∂input, accumulating parameter gradients as a side effect.
// Backward must be called at most once per Forward, with the gradient of
// the most recent Forward's output.
type Layer interface {
	// Name returns a short unique identifier, e.g. "conv1".
	Name() string
	// Forward runs the layer on a batch.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward back-propagates through the most recent Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable parameters (possibly empty).
	// Callers must not mutate the returned slice.
	Params() []*Param
	// OutShape maps a per-sample input shape (excluding the batch
	// dimension) to the per-sample output shape.
	OutShape(in []int) ([]int, error)
}

// shapeVolume returns the product of dims.
func shapeVolume(dims []int) int {
	v := 1
	for _, d := range dims {
		v *= d
	}
	return v
}

func shapeErr(layer string, want string, got []int) error {
	return fmt.Errorf("nn: layer %s expects %s input, got shape %v", layer, want, got)
}
