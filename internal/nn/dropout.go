package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Dropout zeroes each element independently with probability p during
// training and scales survivors by 1/(1-p) ("inverted dropout"), so
// inference is a no-op.
type Dropout struct {
	name string
	p    float64
	rng  *mathx.RNG
	mask []float64
}

// NewDropout constructs a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(name string, p float64, r *mathx.RNG) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout %q probability %v out of [0,1)", name, p)
	}
	if r == nil {
		return nil, fmt.Errorf("nn: dropout %q needs an RNG", name)
	}
	return &Dropout{name: name, p: p, rng: r}, nil
}

// Name implements Layer.
func (l *Dropout) Name() string { return l.name }

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Dropout) OutShape(in []int) ([]int, error) {
	return append([]int(nil), in...), nil
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.p == 0 {
		l.mask = nil
		return x.Clone()
	}
	keep := 1 - l.p
	scale := 1 / keep
	mask := make([]float64, x.Size())
	out := x.Clone()
	data := out.Data()
	for i := range data {
		if l.rng.Float64() < keep {
			mask[i] = scale
			data[i] *= scale
		} else {
			data[i] = 0
		}
	}
	l.mask = mask
	return out
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		// Forward ran in eval mode or with p=0: identity gradient.
		return grad.Clone()
	}
	if grad.Size() != len(l.mask) {
		panic(shapeErr(l.name, fmt.Sprintf("grad with %d elems", len(l.mask)), grad.Shape()))
	}
	dx := grad.Clone()
	data := dx.Data()
	for i, m := range l.mask {
		data[i] *= m
	}
	l.mask = nil
	return dx
}

var _ Layer = (*Dropout)(nil)
