package nn

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// ReLU applies max(0, x) elementwise. It works on tensors of any rank.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.name }

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *ReLU) OutShape(in []int) ([]int, error) {
	return append([]int(nil), in...), nil
}

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	var mask []bool
	if train {
		mask = make([]bool, out.Size())
	}
	data := out.Data()
	for i, v := range data {
		if v > 0 {
			if train {
				mask[i] = true
			}
		} else {
			data[i] = 0
		}
	}
	if train {
		l.mask = mask
	} else {
		l.mask = nil
	}
	return out
}

// Backward implements Layer.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		panic(fmt.Sprintf("nn: relu %s Backward without training Forward", l.name))
	}
	if grad.Size() != len(l.mask) {
		panic(shapeErr(l.name, fmt.Sprintf("grad with %d elems", len(l.mask)), grad.Shape()))
	}
	dx := grad.Clone()
	data := dx.Data()
	for i := range data {
		if !l.mask[i] {
			data[i] = 0
		}
	}
	l.mask = nil
	return dx
}

// Tanh applies the hyperbolic tangent elementwise. Provided for
// completeness and used by the reconstruction-attack decoder in the
// privacy module.
type Tanh struct {
	name   string
	cached *tensor.Tensor
}

// NewTanh constructs a Tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name implements Layer.
func (l *Tanh) Name() string { return l.name }

// Params implements Layer.
func (l *Tanh) Params() []*Param { return nil }

// OutShape implements Layer.
func (l *Tanh) OutShape(in []int) ([]int, error) {
	return append([]int(nil), in...), nil
}

// Forward implements Layer.
func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Apply(math.Tanh)
	if train {
		l.cached = out
	} else {
		l.cached = nil
	}
	return out
}

// Backward implements Layer.
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.cached == nil {
		panic(fmt.Sprintf("nn: tanh %s Backward without training Forward", l.name))
	}
	dx := grad.Clone()
	data := dx.Data()
	y := l.cached.Data()
	for i := range data {
		data[i] *= 1 - y[i]*y[i]
	}
	l.cached = nil
	return dx
}

var (
	_ Layer = (*ReLU)(nil)
	_ Layer = (*Tanh)(nil)
)
