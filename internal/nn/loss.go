package nn

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of softmax(logits)
// against integer class labels, fused for numerical stability. It returns
// the scalar loss and ∂loss/∂logits (already divided by the batch size, so
// it can be fed straight into Backward).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	s := logits.Shape()
	if len(s) != 2 {
		return 0, nil, fmt.Errorf("nn: cross-entropy expects (N,classes) logits, got %v", s)
	}
	n, classes := s[0], s[1]
	if len(labels) != n {
		return 0, nil, fmt.Errorf("nn: cross-entropy got %d labels for batch of %d", len(labels), n)
	}
	grad := tensor.New(n, classes)
	src := logits.Data()
	dst := grad.Data()
	loss := 0.0
	invN := 1 / float64(n)
	probs := make([]float64, classes)
	for i := 0; i < n; i++ {
		y := labels[i]
		if y < 0 || y >= classes {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d) at row %d", y, classes, i)
		}
		row := src[i*classes : (i+1)*classes]
		mathx.Softmax(probs, row)
		p := probs[y]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
		grow := dst[i*classes : (i+1)*classes]
		for j, pj := range probs {
			grow[j] = pj * invN
		}
		grow[y] -= invN
	}
	return loss * invN, grad, nil
}

// Predict returns the argmax class for each row of a (N, classes) logits
// (or probability) matrix.
func Predict(logits *tensor.Tensor) []int {
	s := logits.Shape()
	if len(s) != 2 {
		panic(fmt.Sprintf("nn: Predict expects (N,classes), got %v", s))
	}
	n, classes := s[0], s[1]
	out := make([]int, n)
	data := logits.Data()
	for i := 0; i < n; i++ {
		out[i] = mathx.ArgMax(data[i*classes : (i+1)*classes])
	}
	return out
}

// MSE returns the mean squared error between pred and target along with
// ∂loss/∂pred. Used by the privacy module's reconstruction attack decoder.
func MSE(pred, target *tensor.Tensor) (float64, *tensor.Tensor, error) {
	if !pred.SameShape(target) {
		return 0, nil, fmt.Errorf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape())
	}
	n := pred.Size()
	if n == 0 {
		return 0, pred.Clone(), nil
	}
	grad := tensor.New(pred.Shape()...)
	gd := grad.Data()
	pd, td := pred.Data(), target.Data()
	loss := 0.0
	inv := 1 / float64(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += d * d
		gd[i] = 2 * d * inv
	}
	return loss * inv, grad, nil
}
