package nn

import (
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestAvgPoolKnownValues(t *testing.T) {
	pool, err := NewAvgPool2D("a", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		0, 0, 2, 2,
		0, 0, 2, 2,
	}, 1, 1, 4, 4)
	got := pool.Forward(x, false)
	want := tensor.FromSlice([]float64{2.5, 6.5, 0, 2}, 1, 1, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("avgpool forward = %v, want %v", got, want)
	}
}

func TestAvgPoolGradients(t *testing.T) {
	r := mathx.NewRNG(1)
	pool, err := NewAvgPool2D("a", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 2, 2, 4, 4)
	if _, err := CheckLayerGradients(pool, x, 1e-6, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestAvgPoolShapeContract(t *testing.T) {
	pool, err := NewAvgPool2D("a", 3, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pool.OutShape([]int{4, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 3 || out[2] != 3 {
		t.Fatalf("OutShape = %v", out)
	}
	x := tensor.Randn(mathx.NewRNG(2), 1, 2, 4, 9, 9)
	y := pool.Forward(x, true)
	if s := y.Shape(); s[1] != 4 || s[2] != 3 || s[3] != 3 {
		t.Fatalf("forward shape = %v", s)
	}
	dx := pool.Backward(y)
	if !dx.SameShape(x) {
		t.Fatal("backward shape mismatch")
	}
}

func TestAvgPoolRejectsBadConfig(t *testing.T) {
	if _, err := NewAvgPool2D("a", 0, 2, 0, 0); err == nil {
		t.Fatal("zero kernel accepted")
	}
	if _, err := NewAvgPool2D("a", 2, 2, -1, 0); err == nil {
		t.Fatal("negative stride accepted")
	}
}

// TestAvgPoolPreservesMeanSignal pins the property the privacy ablation
// relies on: average pooling is linear, so pooling then upsampling
// approximates a blur of the input, while max pooling biases upward.
func TestAvgPoolPreservesMeanSignal(t *testing.T) {
	r := mathx.NewRNG(3)
	x := tensor.Randn(r, 1, 1, 1, 8, 8)
	avg, err := NewAvgPool2D("a", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxp, err := NewMaxPool2D("m", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ya := avg.Forward(x, false)
	ym := maxp.Forward(x, false)
	if diff := ya.Mean() - x.Mean(); diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avg pooling changed mean by %v", diff)
	}
	if ym.Mean() <= ya.Mean() {
		t.Fatal("max pooling did not bias above avg pooling on noise")
	}
}
