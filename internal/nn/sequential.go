package nn

import (
	"fmt"
	"io"
	"strings"

	"github.com/stsl/stsl/internal/tensor"
)

// Sequential chains layers into a feed-forward network. It is itself a
// Layer, so sub-networks compose: the split-learning framework builds one
// Sequential for the end-system stack and one for the server stack.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential builds a network from the given layers. Layer names within
// one Sequential must be unique so parameters serialise unambiguously.
func NewSequential(name string, layers ...Layer) (*Sequential, error) {
	seen := make(map[string]bool, len(layers))
	for _, l := range layers {
		if l == nil {
			return nil, fmt.Errorf("nn: sequential %q contains nil layer", name)
		}
		if seen[l.Name()] {
			return nil, fmt.Errorf("nn: sequential %q has duplicate layer name %q", name, l.Name())
		}
		seen[l.Name()] = true
	}
	return &Sequential{name: name, layers: append([]Layer(nil), layers...)}, nil
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Layers returns the contained layers in order. Callers must not mutate
// the returned slice.
func (s *Sequential) Layers() []Layer { return s.layers }

// Len returns the number of layers.
func (s *Sequential) Len() int { return len(s.layers) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// SetDType selects the compute precision for every contained layer that
// supports one (Dense, Conv2D, nested Sequentials); layers without a
// precision choice (activations, pooling, flatten) are untouched. It
// makes Sequential itself satisfy the same optional interface, so the
// setting recurses through nested stacks.
func (s *Sequential) SetDType(dt tensor.DType) {
	for _, l := range s.layers {
		if dl, ok := l.(interface{ SetDType(tensor.DType) }); ok {
			dl.SetDType(dt)
		}
	}
}

// Params implements Layer: the concatenation of all layer parameters.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer by threading the shape through every layer.
func (s *Sequential) OutShape(in []int) ([]int, error) {
	var err error
	for _, l := range s.layers {
		in, err = l.OutShape(in)
		if err != nil {
			return nil, fmt.Errorf("nn: sequential %s at layer %s: %w", s.name, l.Name(), err)
		}
	}
	return in, nil
}

// ZeroGrad clears every parameter gradient.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar learnable parameters.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Size()
	}
	return n
}

// Summary renders a per-layer table of output shapes and parameter counts
// for a given per-sample input shape — the Fig-3 audit used by the bench
// harness.
func (s *Sequential) Summary(in []int) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-18s %12s\n", "layer", "output shape", "params")
	cur := append([]int(nil), in...)
	total := 0
	for _, l := range s.layers {
		next, err := l.OutShape(cur)
		if err != nil {
			return "", err
		}
		n := 0
		for _, p := range l.Params() {
			n += p.Value.Size()
		}
		total += n
		fmt.Fprintf(&b, "%-14s %-18s %12d\n", l.Name(), fmt.Sprintf("%v", next), n)
		cur = next
	}
	fmt.Fprintf(&b, "%-14s %-18s %12d\n", "total", "", total)
	return b.String(), nil
}

// SaveWeights writes every parameter tensor to w in declaration order
// using the tensor wire format, prefixed by the parameter count.
func (s *Sequential) SaveWeights(w io.Writer) error {
	ps := s.Params()
	if _, err := fmt.Fprintf(w, "STSLW %d\n", len(ps)); err != nil {
		return fmt.Errorf("nn: save header: %w", err)
	}
	for _, p := range ps {
		if _, err := fmt.Fprintf(w, "%s\n", p.Name); err != nil {
			return fmt.Errorf("nn: save name %s: %w", p.Name, err)
		}
		if _, err := p.Value.WriteTo(w); err != nil {
			return fmt.Errorf("nn: save tensor %s: %w", p.Name, err)
		}
	}
	return nil
}

// LoadWeights reads parameters written by SaveWeights into the network.
// Parameter names and shapes must match exactly.
func (s *Sequential) LoadWeights(r io.Reader) error {
	ps := s.Params()
	var count int
	if _, err := fmt.Fscanf(r, "STSLW %d\n", &count); err != nil {
		return fmt.Errorf("nn: load header: %w", err)
	}
	if count != len(ps) {
		return fmt.Errorf("nn: weight file has %d params, network has %d", count, len(ps))
	}
	for _, p := range ps {
		var name string
		if _, err := fmt.Fscanf(r, "%s\n", &name); err != nil {
			return fmt.Errorf("nn: load name: %w", err)
		}
		if name != p.Name {
			return fmt.Errorf("nn: weight order mismatch: file has %q, network expects %q", name, p.Name)
		}
		var t tensor.Tensor
		if _, err := t.ReadFrom(r); err != nil {
			return fmt.Errorf("nn: load tensor %s: %w", name, err)
		}
		if !t.SameShape(p.Value) {
			return fmt.Errorf("nn: tensor %s shape %v does not match parameter shape %v", name, t.Shape(), p.Value.Shape())
		}
		p.Value.CopyFrom(&t)
	}
	return nil
}

var _ Layer = (*Sequential)(nil)
