package nn

import (
	"math"
	"testing"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

func TestConv2DKnownValues(t *testing.T) {
	// One 1-channel 3x3 input, one 2x2 kernel of all ones, no pad: output
	// is the sum over each receptive field.
	r := mathx.NewRNG(1)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 1, Out: 1, KernelH: 2, KernelW: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	conv.weight.Value.Fill(1)
	conv.bias.Value.Fill(0.5)
	x := tensor.FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	got := conv.Forward(x, false)
	want := tensor.FromSlice([]float64{
		1 + 2 + 4 + 5 + 0.5, 2 + 3 + 5 + 6 + 0.5,
		4 + 5 + 7 + 8 + 0.5, 5 + 6 + 8 + 9 + 0.5,
	}, 1, 1, 2, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("conv forward = %v, want %v", got, want)
	}
}

func TestConv2DSamePadPreservesSpatialDims(t *testing.T) {
	r := mathx.NewRNG(2)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 3, Out: 16, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	out, err := conv.OutShape([]int{3, 32, 32})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 16 || out[1] != 32 || out[2] != 32 {
		t.Fatalf("OutShape = %v, want [16 32 32]", out)
	}
	x := tensor.Randn(r, 1, 2, 3, 32, 32)
	y := conv.Forward(x, false)
	if s := y.Shape(); s[0] != 2 || s[1] != 16 || s[2] != 32 || s[3] != 32 {
		t.Fatalf("forward shape = %v", s)
	}
}

func TestConv2DRejectsBadConfig(t *testing.T) {
	r := mathx.NewRNG(1)
	cases := []Conv2DConfig{
		{Name: "a", In: 0, Out: 4, KernelH: 3, KernelW: 3},
		{Name: "b", In: 3, Out: 0, KernelH: 3, KernelW: 3},
		{Name: "c", In: 3, Out: 4, KernelH: 0, KernelW: 3},
		{Name: "d", In: 3, Out: 4, KernelH: 2, KernelW: 2, SamePad: true}, // even kernel same-pad
		{Name: "e", In: 3, Out: 4, KernelH: 3, KernelW: 3, PadH: -1},
	}
	for _, cfg := range cases {
		if _, err := NewConv2D(cfg, r); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestConv2DGradients(t *testing.T) {
	r := mathx.NewRNG(3)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 2, Out: 3, KernelH: 3, KernelW: 3, SamePad: true}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 2, 2, 5, 5)
	if _, err := CheckLayerGradients(conv, x, 1e-5, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DStridedGradients(t *testing.T) {
	r := mathx.NewRNG(4)
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: 1, Out: 2, KernelH: 2, KernelW: 2, StrideH: 2, StrideW: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 2, 1, 6, 6)
	if _, err := CheckLayerGradients(conv, x, 1e-5, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestMaxPoolKnownValues(t *testing.T) {
	pool, err := NewMaxPool2D("p", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	got := pool.Forward(x, false)
	want := tensor.FromSlice([]float64{4, 8, 9, 4}, 1, 1, 2, 2)
	if !got.Equal(want, 0) {
		t.Fatalf("pool forward = %v, want %v", got, want)
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	pool, err := NewMaxPool2D("p", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	pool.Forward(x, true)
	grad := tensor.FromSlice([]float64{10}, 1, 1, 1, 1)
	dx := pool.Backward(grad)
	want := tensor.FromSlice([]float64{0, 0, 0, 10}, 1, 1, 2, 2)
	if !dx.Equal(want, 0) {
		t.Fatalf("pool backward = %v, want %v", dx, want)
	}
}

func TestMaxPoolGradients(t *testing.T) {
	r := mathx.NewRNG(5)
	pool, err := NewMaxPool2D("p", 2, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct values avoid ties at the max, where the subgradient is
	// legitimately non-unique and finite differences disagree.
	x := tensor.Randn(r, 10, 2, 2, 4, 4)
	if _, err := CheckLayerGradients(pool, x, 1e-6, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestDenseKnownValues(t *testing.T) {
	r := mathx.NewRNG(6)
	d, err := NewDense("d", 2, 2, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	d.weight.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	d.bias.Value.CopyFrom(tensor.FromSlice([]float64{10, 20}, 2))
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	got := d.Forward(x, false)
	want := tensor.FromSlice([]float64{1 + 3 + 10, 2 + 4 + 20}, 1, 2)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("dense forward = %v, want %v", got, want)
	}
}

func TestDenseGradients(t *testing.T) {
	r := mathx.NewRNG(7)
	d, err := NewDense("d", 6, 4, nil, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 3, 6)
	if _, err := CheckLayerGradients(d, x, 1e-5, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	relu := NewReLU("r")
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 1, 4)
	y := relu.Forward(x, true)
	if !y.Equal(tensor.FromSlice([]float64{0, 0, 2, 0}, 1, 4), 0) {
		t.Fatalf("relu forward = %v", y)
	}
	dx := relu.Backward(tensor.FromSlice([]float64{5, 5, 5, 5}, 1, 4))
	if !dx.Equal(tensor.FromSlice([]float64{0, 0, 5, 0}, 1, 4), 0) {
		t.Fatalf("relu backward = %v", dx)
	}
}

func TestTanhGradients(t *testing.T) {
	r := mathx.NewRNG(8)
	x := tensor.Randn(r, 1, 2, 5)
	if _, err := CheckLayerGradients(NewTanh("t"), x, 1e-6, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 2, 2, 2, 1)
	y := f.Forward(x, true)
	if s := y.Shape(); s[0] != 2 || s[1] != 4 {
		t.Fatalf("flatten shape = %v", s)
	}
	dx := f.Backward(y)
	if !dx.Equal(x, 0) {
		t.Fatal("flatten backward did not restore shape/values")
	}
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := mathx.NewRNG(9)
	d, err := NewDropout("d", 0.5, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 4, 4)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("eval-mode dropout changed values")
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	r := mathx.NewRNG(10)
	const p = 0.3
	d, err := NewDropout("d", p, r)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Full(1, 100, 100)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		} else if math.Abs(v-1/(1-p)) > 1e-12 {
			t.Fatalf("surviving element has value %v, want %v", v, 1/(1-p))
		}
	}
	frac := float64(zeros) / float64(y.Size())
	if math.Abs(frac-p) > 0.02 {
		t.Fatalf("dropped fraction = %v, want ≈%v", frac, p)
	}
	// Inverted dropout keeps the expected sum.
	if mean := y.Mean(); math.Abs(mean-1) > 0.05 {
		t.Fatalf("post-dropout mean = %v, want ≈1", mean)
	}
}

func TestDropoutRejectsBadProbability(t *testing.T) {
	r := mathx.NewRNG(1)
	for _, p := range []float64{-0.1, 1, 1.5} {
		if _, err := NewDropout("d", p, r); err == nil {
			t.Fatalf("probability %v accepted", p)
		}
	}
}

func TestBatchNormTrainNormalises(t *testing.T) {
	r := mathx.NewRNG(11)
	bn, err := NewBatchNorm2D("bn", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 3, 4, 2, 5, 5)
	// Shift one channel far from zero.
	data := x.Data()
	for img := 0; img < 4; img++ {
		base := img * 2 * 25
		for i := 0; i < 25; i++ {
			data[base+i] += 100
		}
	}
	y := bn.Forward(x, true)
	// Per-channel output must be ≈ zero-mean unit-variance (gamma=1, beta=0).
	yd := y.Data()
	for ch := 0; ch < 2; ch++ {
		var vals []float64
		for img := 0; img < 4; img++ {
			base := (img*2 + ch) * 25
			vals = append(vals, yd[base:base+25]...)
		}
		if m := mathx.Mean(vals); math.Abs(m) > 1e-9 {
			t.Fatalf("channel %d mean = %v", ch, m)
		}
		if s := mathx.Std(vals); math.Abs(s-1) > 1e-3 {
			t.Fatalf("channel %d std = %v", ch, s)
		}
	}
}

func TestBatchNormGradients(t *testing.T) {
	r := mathx.NewRNG(12)
	bn, err := NewBatchNorm2D("bn", 2)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(r, 1, 3, 2, 4, 4)
	if _, err := CheckLayerGradients(bn, x, 1e-5, 1e-4); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	r := mathx.NewRNG(13)
	bn, err := NewBatchNorm2D("bn", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Train on many batches so running stats converge toward N(5, 4).
	for i := 0; i < 200; i++ {
		x := tensor.Randn(r, 2, 8, 1, 4, 4)
		x.ApplyInPlace(func(v float64) float64 { return v + 5 })
		bn.Forward(x, true)
	}
	// Eval on a known constant input: output should be ≈ (5-5)/2 = 0 for
	// input 5.
	x := tensor.Full(5, 1, 1, 2, 2)
	y := bn.Forward(x, false)
	if m := y.Mean(); math.Abs(m) > 0.2 {
		t.Fatalf("eval output mean = %v, want ≈0", m)
	}
}
