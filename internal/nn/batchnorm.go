package nn

import (
	"fmt"
	"math"

	"github.com/stsl/stsl/internal/tensor"
)

// BatchNorm2D normalises each channel of NCHW input over the batch and
// spatial dimensions, then applies a learnable per-channel affine
// transform. Running statistics accumulated during training are used at
// inference. It is an optional extension layer (the paper's Fig-3 CNN does
// not use it) exercised by the ablation benchmarks.
type BatchNorm2D struct {
	name     string
	channels int
	eps      float64
	momentum float64

	gamma, beta     *Param
	runMean, runVar *tensor.Tensor
	params          []*Param
	// Forward cache.
	cachedXHat *tensor.Tensor
	cachedStd  []float64
	cachedN    int
}

// NewBatchNorm2D constructs a batch-normalisation layer for the given
// channel count.
func NewBatchNorm2D(name string, channels int) (*BatchNorm2D, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("nn: batchnorm %q needs positive channels, got %d", name, channels)
	}
	b := &BatchNorm2D{
		name:     name,
		channels: channels,
		eps:      1e-5,
		momentum: 0.9,
		runMean:  tensor.New(channels),
		runVar:   tensor.Full(1, channels),
	}
	b.gamma = NewParam(name+"/gamma", tensor.Full(1, channels))
	b.beta = NewParam(name+"/beta", tensor.New(channels))
	b.params = []*Param{b.gamma, b.beta}
	return b, nil
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return b.params }

// OutShape implements Layer.
func (b *BatchNorm2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 || in[0] != b.channels {
		return nil, shapeErr(b.name, fmt.Sprintf("(%d,H,W)", b.channels), in)
	}
	return append([]int(nil), in...), nil
}

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := x.Shape()
	if len(s) != 4 || s[1] != b.channels {
		panic(shapeErr(b.name, fmt.Sprintf("(N,%d,H,W)", b.channels), s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	count := n * h * w
	out := tensor.New(s...)
	src, dst := x.Data(), out.Data()
	gd, bd := b.gamma.Value.Data(), b.beta.Value.Data()

	if !train {
		rm, rv := b.runMean.Data(), b.runVar.Data()
		for ch := 0; ch < c; ch++ {
			inv := 1 / math.Sqrt(rv[ch]+b.eps)
			g, bt, m := gd[ch], bd[ch], rm[ch]
			for img := 0; img < n; img++ {
				base := (img*c + ch) * h * w
				for i := 0; i < h*w; i++ {
					dst[base+i] = g*(src[base+i]-m)*inv + bt
				}
			}
		}
		b.cachedXHat = nil
		return out
	}

	xhat := tensor.New(s...)
	xh := xhat.Data()
	std := make([]float64, c)
	rm, rv := b.runMean.Data(), b.runVar.Data()
	for ch := 0; ch < c; ch++ {
		// Batch statistics over (N, H, W) for this channel.
		sum := 0.0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				sum += src[base+i]
			}
		}
		mean := sum / float64(count)
		varSum := 0.0
		for img := 0; img < n; img++ {
			base := (img*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				d := src[base+i] - mean
				varSum += d * d
			}
		}
		variance := varSum / float64(count)
		std[ch] = math.Sqrt(variance + b.eps)
		inv := 1 / std[ch]
		g, bt := gd[ch], bd[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				v := (src[base+i] - mean) * inv
				xh[base+i] = v
				dst[base+i] = g*v + bt
			}
		}
		rm[ch] = b.momentum*rm[ch] + (1-b.momentum)*mean
		rv[ch] = b.momentum*rv[ch] + (1-b.momentum)*variance
	}
	b.cachedXHat = xhat
	b.cachedStd = std
	b.cachedN = count
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.cachedXHat == nil {
		panic(fmt.Sprintf("nn: batchnorm %s Backward without training Forward", b.name))
	}
	s := grad.Shape()
	if !grad.SameShape(b.cachedXHat) {
		panic(shapeErr(b.name, "grad matching forward input", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	count := float64(b.cachedN)
	dx := tensor.New(s...)
	gD, xh, dxD := grad.Data(), b.cachedXHat.Data(), dx.Data()
	gGrad, bGrad := b.gamma.Grad.Data(), b.beta.Grad.Data()
	gamma := b.gamma.Value.Data()

	for ch := 0; ch < c; ch++ {
		var sumDy, sumDyXhat float64
		for img := 0; img < n; img++ {
			base := (img*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				dy := gD[base+i]
				sumDy += dy
				sumDyXhat += dy * xh[base+i]
			}
		}
		gGrad[ch] += sumDyXhat
		bGrad[ch] += sumDy
		k := gamma[ch] / b.cachedStd[ch]
		for img := 0; img < n; img++ {
			base := (img*c + ch) * h * w
			for i := 0; i < h*w; i++ {
				dxD[base+i] = k * (gD[base+i] - sumDy/count - xh[base+i]*sumDyXhat/count)
			}
		}
	}
	b.cachedXHat = nil
	b.cachedStd = nil
	return dx
}

var _ Layer = (*BatchNorm2D)(nil)
