package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Dense is a fully connected layer: out = x·W + b for x of shape (N, in),
// W of shape (in, out), b of shape (out).
type Dense struct {
	name    string
	in, out int
	weight  *Param
	bias    *Param
	params  []*Param
	cachedX *tensor.Tensor
	// dtype selects the matmul precision (see tensor.DType); the zero
	// value keeps the float64 kernels.
	dtype tensor.DType
}

// SetDType selects the layer's compute precision. Sequential.SetDType
// fans this out across a whole stack.
func (d *Dense) SetDType(dt tensor.DType) { d.dtype = dt }

// NewDense constructs a fully connected layer initialised from r; init
// defaults to XavierUniform.
func NewDense(name string, in, out int, init Initializer, r *mathx.RNG) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: dense %q needs positive dims, got in=%d out=%d", name, in, out)
	}
	if init == nil {
		init = XavierUniform()
	}
	d := &Dense{name: name, in: in, out: out}
	d.weight = NewParam(name+"/weight", init(r, in, out, in, out))
	d.bias = NewParam(name+"/bias", tensor.New(out))
	d.params = []*Param{d.weight, d.bias}
	return d, nil
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return d.params }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) ([]int, error) {
	if len(in) != 1 || in[0] != d.in {
		return nil, shapeErr(d.name, fmt.Sprintf("(%d)", d.in), in)
	}
	return []int{d.out}, nil
}

// Forward implements Layer. Input must be (N, in).
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := x.Shape()
	if len(s) != 2 || s[1] != d.in {
		panic(shapeErr(d.name, fmt.Sprintf("(N,%d)", d.in), s))
	}
	out := tensor.MatMulDT(x, d.weight.Value, d.dtype)
	out.AddRowVector(d.bias.Value)
	if train {
		d.cachedX = x
	} else {
		d.cachedX = nil
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.cachedX == nil {
		panic(fmt.Sprintf("nn: dense %s Backward without training Forward", d.name))
	}
	s := grad.Shape()
	if len(s) != 2 || s[1] != d.out || s[0] != d.cachedX.Dim(0) {
		panic(shapeErr(d.name, fmt.Sprintf("grad (N,%d)", d.out), s))
	}
	d.weight.Grad.AddInPlace(tensor.MatMulTransADT(d.cachedX, grad, d.dtype))
	d.bias.Grad.AddInPlace(grad.SumRows())
	dx := tensor.MatMulTransBDT(grad, d.weight.Value, d.dtype)
	d.cachedX = nil
	return dx
}

var _ Layer = (*Dense)(nil)
