package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/tensor"
)

// AvgPool2D is an average-pooling layer over NCHW input. It exists for
// the Fig-4 privacy ablation: unlike max-pooling — which the paper
// credits with hiding original images — average pooling is a linear map,
// so the downsampled image remains substantially reconstructible. The
// ablation quantifies how much of the paper's privacy claim is owed to
// the *max* nonlinearity rather than to downsampling itself.
type AvgPool2D struct {
	name             string
	kernelH, kernelW int
	strideH, strideW int
	inShape          []int
}

// NewAvgPool2D constructs an average-pooling layer; zero strides default
// to the kernel size.
func NewAvgPool2D(name string, kernelH, kernelW, strideH, strideW int) (*AvgPool2D, error) {
	if kernelH <= 0 || kernelW <= 0 {
		return nil, fmt.Errorf("nn: avgpool %q needs positive kernel, got %dx%d", name, kernelH, kernelW)
	}
	if strideH == 0 {
		strideH = kernelH
	}
	if strideW == 0 {
		strideW = kernelW
	}
	if strideH < 0 || strideW < 0 {
		return nil, fmt.Errorf("nn: avgpool %q has negative stride", name)
	}
	return &AvgPool2D{name: name, kernelH: kernelH, kernelW: kernelW, strideH: strideH, strideW: strideW}, nil
}

// Name implements Layer.
func (p *AvgPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// OutShape implements Layer.
func (p *AvgPool2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(p.name, "(C,H,W)", in)
	}
	oh := (in[1]-p.kernelH)/p.strideH + 1
	ow := (in[2]-p.kernelW)/p.strideW + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: avgpool %s yields empty output for input %v", p.name, in)
	}
	return []int{in[0], oh, ow}, nil
}

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	s := x.Shape()
	if len(s) != 4 {
		panic(shapeErr(p.name, "(N,C,H,W)", s))
	}
	n, c, h, w := s[0], s[1], s[2], s[3]
	oh := (h-p.kernelH)/p.strideH + 1
	ow := (w-p.kernelW)/p.strideW + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: avgpool %s yields empty output for input %v", p.name, s))
	}
	out := tensor.New(n, c, oh, ow)
	src, dst := x.Data(), out.Data()
	inv := 1 / float64(p.kernelH*p.kernelW)
	di := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			plane := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.strideH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox * p.strideW
					sum := 0.0
					for ky := 0; ky < p.kernelH; ky++ {
						rowBase := plane + (iy0+ky)*w + ix0
						for kx := 0; kx < p.kernelW; kx++ {
							sum += src[rowBase+kx]
						}
					}
					dst[di] = sum * inv
					di++
				}
			}
		}
	}
	if train {
		p.inShape = s
	} else {
		p.inShape = nil
	}
	return out
}

// Backward implements Layer: each output gradient spreads uniformly over
// its input window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic(fmt.Sprintf("nn: avgpool %s Backward without training Forward", p.name))
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	gs := grad.Shape()
	oh := (h-p.kernelH)/p.strideH + 1
	ow := (w-p.kernelW)/p.strideW + 1
	if len(gs) != 4 || gs[0] != n || gs[1] != c || gs[2] != oh || gs[3] != ow {
		panic(shapeErr(p.name, fmt.Sprintf("grad (N,%d,%d,%d)", c, oh, ow), gs))
	}
	dx := tensor.New(p.inShape...)
	src, dst := grad.Data(), dx.Data()
	inv := 1 / float64(p.kernelH*p.kernelW)
	gi := 0
	for img := 0; img < n; img++ {
		for ch := 0; ch < c; ch++ {
			plane := (img*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				iy0 := oy * p.strideH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox * p.strideW
					g := src[gi] * inv
					gi++
					for ky := 0; ky < p.kernelH; ky++ {
						rowBase := plane + (iy0+ky)*w + ix0
						for kx := 0; kx < p.kernelW; kx++ {
							dst[rowBase+kx] += g
						}
					}
				}
			}
		}
	}
	p.inShape = nil
	return dx
}

var _ Layer = (*AvgPool2D)(nil)
