package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/tensor"
)

// DirectConvForward computes the same result as Conv2D.Forward with naive
// nested loops instead of the im2col lowering. It exists for the design
// ablation benchmarked in bench_test.go (im2col+matmul vs direct loops)
// and as an independent implementation that cross-checks Conv2D in tests.
// Inference only — no backward support.
func DirectConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	s := x.Shape()
	if len(s) != 4 || s[1] != c.inC {
		panic(shapeErr(c.name, fmt.Sprintf("(N,%d,H,W)", c.inC), s))
	}
	n, h, w := s[0], s[2], s[3]
	g, err := c.geom(h, w)
	if err != nil {
		panic(err)
	}
	oh, ow := g.OutHeight(), g.OutWidth()
	out := tensor.New(n, c.outC, oh, ow)
	src := x.Data()
	dst := out.Data()
	wData := c.weight.Value.Data()
	bData := c.bias.Value.Data()
	kArea := c.kernelH * c.kernelW
	for img := 0; img < n; img++ {
		for oc := 0; oc < c.outC; oc++ {
			wBase := oc * c.inC * kArea
			oBase := (img*c.outC + oc) * oh * ow
			for oy := 0; oy < oh; oy++ {
				iy0 := oy*c.strideH - c.padH
				for ox := 0; ox < ow; ox++ {
					ix0 := ox*c.strideW - c.padW
					sum := bData[oc]
					for ic := 0; ic < c.inC; ic++ {
						iBase := (img*c.inC + ic) * h * w
						kBase := wBase + ic*kArea
						for ky := 0; ky < c.kernelH; ky++ {
							iy := iy0 + ky
							if iy < 0 || iy >= h {
								continue
							}
							rowBase := iBase + iy*w
							kRow := kBase + ky*c.kernelW
							for kx := 0; kx < c.kernelW; kx++ {
								ix := ix0 + kx
								if ix < 0 || ix >= w {
									continue
								}
								sum += src[rowBase+ix] * wData[kRow+kx]
							}
						}
					}
					dst[oBase+oy*ow+ox] = sum
				}
			}
		}
	}
	return out
}
