package nn

import (
	"fmt"

	"github.com/stsl/stsl/internal/mathx"
	"github.com/stsl/stsl/internal/tensor"
)

// Conv2D is a 2-D convolution layer over NCHW input, lowered to matrix
// multiplication with im2col. Weights have shape (outChannels,
// inChannels*kH*kW) — each output channel's kernel flattened to one row —
// and the bias has shape (outChannels).
type Conv2D struct {
	name             string
	inC, outC        int
	kernelH, kernelW int
	strideH, strideW int
	padH, padW       int
	weight, bias     *Param
	params           []*Param
	// Forward cache for Backward.
	cachedCols *tensor.Tensor
	cachedN    int
	cachedGeom tensor.ConvGeom
	// dtype selects the matmul precision (see tensor.DType); the zero
	// value keeps the float64 kernels.
	dtype tensor.DType
}

// SetDType selects the layer's compute precision. Sequential.SetDType
// fans this out across a whole stack.
func (c *Conv2D) SetDType(dt tensor.DType) { c.dtype = dt }

// Conv2DConfig collects the constructor arguments for NewConv2D. Zero
// stride defaults to 1; padding defaults to "same" for odd kernels when
// SamePad is set.
type Conv2DConfig struct {
	Name             string
	In, Out          int // channel counts
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
	SamePad          bool
	Init             Initializer // defaults to HeNormal
}

// NewConv2D constructs a convolution layer and initialises its weights
// from r.
func NewConv2D(cfg Conv2DConfig, r *mathx.RNG) (*Conv2D, error) {
	if cfg.In <= 0 || cfg.Out <= 0 {
		return nil, fmt.Errorf("nn: conv %q needs positive channel counts, got in=%d out=%d", cfg.Name, cfg.In, cfg.Out)
	}
	if cfg.KernelH <= 0 || cfg.KernelW <= 0 {
		return nil, fmt.Errorf("nn: conv %q needs positive kernel, got %dx%d", cfg.Name, cfg.KernelH, cfg.KernelW)
	}
	if cfg.StrideH == 0 {
		cfg.StrideH = 1
	}
	if cfg.StrideW == 0 {
		cfg.StrideW = 1
	}
	if cfg.StrideH < 0 || cfg.StrideW < 0 {
		return nil, fmt.Errorf("nn: conv %q has negative stride", cfg.Name)
	}
	if cfg.SamePad {
		if cfg.KernelH%2 == 0 || cfg.KernelW%2 == 0 {
			return nil, fmt.Errorf("nn: conv %q SamePad requires odd kernel, got %dx%d", cfg.Name, cfg.KernelH, cfg.KernelW)
		}
		cfg.PadH, cfg.PadW = cfg.KernelH/2, cfg.KernelW/2
	}
	if cfg.PadH < 0 || cfg.PadW < 0 {
		return nil, fmt.Errorf("nn: conv %q has negative padding", cfg.Name)
	}
	init := cfg.Init
	if init == nil {
		init = HeNormal()
	}
	fanIn := cfg.In * cfg.KernelH * cfg.KernelW
	fanOut := cfg.Out * cfg.KernelH * cfg.KernelW
	c := &Conv2D{
		name:    cfg.Name,
		inC:     cfg.In,
		outC:    cfg.Out,
		kernelH: cfg.KernelH, kernelW: cfg.KernelW,
		strideH: cfg.StrideH, strideW: cfg.StrideW,
		padH: cfg.PadH, padW: cfg.PadW,
	}
	c.weight = NewParam(cfg.Name+"/weight", init(r, fanIn, fanOut, cfg.Out, fanIn))
	c.bias = NewParam(cfg.Name+"/bias", tensor.New(cfg.Out))
	c.params = []*Param{c.weight, c.bias}
	return c, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return c.params }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) ([]int, error) {
	if len(in) != 3 {
		return nil, shapeErr(c.name, "(C,H,W)", in)
	}
	g, err := c.geom(in[1], in[2])
	if err != nil {
		return nil, err
	}
	if in[0] != c.inC {
		return nil, fmt.Errorf("nn: conv %s expects %d input channels, got %d", c.name, c.inC, in[0])
	}
	return []int{c.outC, g.OutHeight(), g.OutWidth()}, nil
}

func (c *Conv2D) geom(h, w int) (tensor.ConvGeom, error) {
	g := tensor.ConvGeom{
		Channels: c.inC, Height: h, Width: w,
		KernelH: c.kernelH, KernelW: c.kernelW,
		StrideH: c.strideH, StrideW: c.strideW,
		PadH: c.padH, PadW: c.padW,
	}
	if err := g.Validate(); err != nil {
		return g, fmt.Errorf("nn: conv %s: %w", c.name, err)
	}
	return g, nil
}

// Forward implements Layer. Input must be (N, inC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	shape := x.Shape()
	if len(shape) != 4 || shape[1] != c.inC {
		panic(shapeErr(c.name, fmt.Sprintf("(N,%d,H,W)", c.inC), shape))
	}
	n := shape[0]
	g, err := c.geom(shape[2], shape[3])
	if err != nil {
		panic(err)
	}
	cols := tensor.Im2Col(x, g) // (N*oh*ow, inC*kh*kw)
	// (N*oh*ow, outC) = cols · Wᵀ. The parallel kernel is bitwise equal
	// to the serial one, so determinism guarantees are unaffected.
	mat := tensor.MatMulTransBPDT(cols, c.weight.Value, c.dtype)
	mat.AddRowVector(c.bias.Value)

	if train {
		c.cachedCols = cols
		c.cachedN = n
		c.cachedGeom = g
	} else {
		c.cachedCols = nil
	}
	return nhwcMatToNCHW(mat, n, c.outC, g.OutHeight(), g.OutWidth())
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cachedCols == nil {
		panic(fmt.Sprintf("nn: conv %s Backward without training Forward", c.name))
	}
	g := c.cachedGeom
	n := c.cachedN
	oh, ow := g.OutHeight(), g.OutWidth()
	gm := grad.Shape()
	if len(gm) != 4 || gm[0] != n || gm[1] != c.outC || gm[2] != oh || gm[3] != ow {
		panic(shapeErr(c.name, fmt.Sprintf("grad (N,%d,%d,%d)", c.outC, oh, ow), gm))
	}
	dmat := nchwToNHWCMat(grad) // (N*oh*ow, outC)
	// dW (outC, K) += dmatᵀ · cols
	c.weight.Grad.AddInPlace(tensor.MatMulTransADT(dmat, c.cachedCols, c.dtype))
	// db += column sums of dmat
	c.bias.Grad.AddInPlace(dmat.SumRows())
	// dcols (R, K) = dmat · W
	dcols := tensor.MatMulDT(dmat, c.weight.Value, c.dtype)
	dx := tensor.Col2Im(dcols, n, g)
	c.cachedCols = nil
	return dx
}

// nhwcMatToNCHW repacks an (N*H*W, C) matrix whose rows are ordered
// (n, y, x) into an (N, C, H, W) tensor.
func nhwcMatToNCHW(mat *tensor.Tensor, n, cCh, h, w int) *tensor.Tensor {
	out := tensor.New(n, cCh, h, w)
	src := mat.Data()
	dst := out.Data()
	hw := h * w
	for img := 0; img < n; img++ {
		for pos := 0; pos < hw; pos++ {
			row := src[(img*hw+pos)*cCh:][:cCh]
			base := img * cCh * hw
			for ch, v := range row {
				dst[base+ch*hw+pos] = v
			}
		}
	}
	return out
}

// nchwToNHWCMat is the inverse repack of nhwcMatToNCHW: (N, C, H, W) →
// (N*H*W, C).
func nchwToNHWCMat(t *tensor.Tensor) *tensor.Tensor {
	s := t.Shape()
	n, cCh, h, w := s[0], s[1], s[2], s[3]
	hw := h * w
	out := tensor.New(n*hw, cCh)
	src := t.Data()
	dst := out.Data()
	for img := 0; img < n; img++ {
		base := img * cCh * hw
		for ch := 0; ch < cCh; ch++ {
			plane := src[base+ch*hw:][:hw]
			for pos, v := range plane {
				dst[(img*hw+pos)*cCh+ch] = v
			}
		}
	}
	return out
}

var _ Layer = (*Conv2D)(nil)
