package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Mean(tc.in); got != tc.want {
				t.Fatalf("Mean(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Std(xs); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", got)
	}
	if got := Variance([]float64{5}); got != 0 {
		t.Fatalf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMaxArgMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 0}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
	if got := ArgMax(xs); got != 2 {
		t.Fatalf("ArgMax = %v, want first of ties (2)", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, tc := range cases {
		if got := Clamp(tc.x, tc.lo, tc.hi); got != tc.want {
			t.Fatalf("Clamp(%v,%v,%v) = %v, want %v", tc.x, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestLogSumExp(t *testing.T) {
	// LSE of equal values a over n entries = a + log(n).
	xs := []float64{2, 2, 2, 2}
	want := 2 + math.Log(4)
	if got := LogSumExp(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
	// Huge values must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); math.IsInf(got, 1) {
		t.Fatal("LogSumExp overflowed on large inputs")
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestSoftmaxBasic(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Softmax(dst, src)
	s := 0.0
	for i, v := range dst {
		if v <= 0 || v >= 1 {
			t.Fatalf("softmax[%d] = %v out of (0,1)", i, v)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", s)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax not monotone: %v", dst)
	}
}

func TestSoftmaxAliasedAndStable(t *testing.T) {
	// In-place operation and stability with large logits.
	xs := []float64{1000, 1001, 1002}
	Softmax(xs, xs)
	s := 0.0
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax unstable: %v", xs)
		}
		s += v
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", s)
	}
}

func TestSoftmaxQuickProperties(t *testing.T) {
	// Property: softmax output is a probability vector and is invariant to
	// adding a constant to all logits.
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				return true
			}
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			return true
		}
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			shifted[i] = v + shift
		}
		Softmax(a, raw)
		Softmax(b, shifted)
		s := 0.0
		for i := range a {
			if a[i] < 0 || a[i] > 1 {
				return false
			}
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
			s += a[i]
		}
		return math.Abs(s-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1e12, 1e12 * (1 + 1e-12), 1e-9, true}, // relative tolerance
		{1, 2, 1e-9, false},
		{math.NaN(), 1, 1, false},
		{0, 1e-12, 1e-9, true},
	}
	for _, tc := range cases {
		if got := AlmostEqual(tc.a, tc.b, tc.tol); got != tc.want {
			t.Fatalf("AlmostEqual(%v,%v,%v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}
