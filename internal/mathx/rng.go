// Package mathx provides deterministic random number generation and small
// numeric helpers shared by every other package in the repository.
//
// All stochastic behaviour in the project (weight initialisation, data
// generation, shuffling, simulated network latency) flows through RNG so
// that experiments are reproducible bit-for-bit from a single seed.
package mathx

import "math"

// RNG is a deterministic pseudo-random number generator based on
// SplitMix64. It is intentionally not safe for concurrent use: every
// goroutine that needs randomness derives its own child generator with
// Split, which keeps streams independent and runs without locks.
//
// The zero value is a valid generator seeded with 0; prefer NewRNG.
type RNG struct {
	state uint64
	// spare holds a cached second normal variate from the Box-Muller
	// transform; spareOK reports whether it is valid.
	spare   float64
	spareOK bool
}

// NewRNG returns a generator seeded with seed. Two generators created with
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent child generator. The child's stream is
// decorrelated from the parent's subsequent output, so handing children to
// concurrent workers preserves determinism regardless of scheduling.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xa5a5a5a55a5a5a5a}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits into the mantissa.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate using the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.spareOK {
		r.spareOK = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.spareOK = true
	return u * m
}

// NormScaled returns a normal variate with the given mean and stddev.
func (r *RNG) NormScaled(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns a log-normal variate parameterised by the mean and
// stddev of the underlying normal distribution. Used by the network
// simulator for heavy-tailed latency.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.NormScaled(mu, sigma))
}

// Exp returns an exponential variate with the given rate (λ > 0).
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exp called with non-positive rate")
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -math.Log(u) / rate
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly swaps elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Dirichlet samples a point from a symmetric Dirichlet distribution with
// concentration alpha over k categories. It is used to create non-IID
// label-skewed data partitions across end-systems.
func (r *RNG) Dirichlet(alpha float64, k int) []float64 {
	if k <= 0 {
		panic("mathx: Dirichlet called with non-positive k")
	}
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		g := r.gamma(alpha)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw; fall back to uniform.
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gamma samples from Gamma(shape, 1) using Marsaglia-Tsang, with the
// standard boost for shape < 1.
func (r *RNG) gamma(shape float64) float64 {
	if shape <= 0 {
		panic("mathx: gamma called with non-positive shape")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
