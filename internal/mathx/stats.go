package mathx

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the largest element, breaking ties toward the
// lowest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best, bestI := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best = x
			bestI = i + 1
		}
	}
	return bestI
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// LogSumExp computes log(Σ exp(x_i)) with the max-subtraction trick so the
// result is finite for any finite inputs.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := Max(xs)
	if math.IsInf(m, -1) {
		return m
	}
	s := 0.0
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax writes the softmax of src into dst (which may alias src) and
// returns dst. Both slices must have the same length.
func Softmax(dst, src []float64) []float64 {
	if len(dst) != len(src) {
		panic("mathx: Softmax length mismatch")
	}
	if len(src) == 0 {
		return dst
	}
	m := Max(src)
	s := 0.0
	for i, x := range src {
		e := math.Exp(x - m)
		dst[i] = e
		s += e
	}
	inv := 1 / s
	for i := range dst {
		dst[i] *= inv
	}
	return dst
}

// AlmostEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser), treating NaNs as unequal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
