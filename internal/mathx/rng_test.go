package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverge: %d vs %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	s := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	if mean := s / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var s, s2 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		s += v
		s2 += v * v
	}
	mean := s / n
	variance := s2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	const n, rate = 100000, 2.0
	s := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		s += v
	}
	if mean := s / n; math.Abs(mean-1/rate) > 0.02 {
		t.Fatalf("exponential mean = %v, want ≈%v", mean, 1/rate)
	}
}

func TestRNGLogNormalPositive(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal produced non-positive value %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGDirichletSimplex(t *testing.T) {
	r := NewRNG(19)
	for _, alpha := range []float64{0.1, 0.5, 1, 10} {
		for trial := 0; trial < 50; trial++ {
			p := r.Dirichlet(alpha, 10)
			s := 0.0
			for _, v := range p {
				if v < 0 {
					t.Fatalf("alpha=%v: negative component %v", alpha, v)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("alpha=%v: components sum to %v, want 1", alpha, s)
			}
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(23)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams matched %d/100 times", same)
	}
}

func TestRNGShuffleQuick(t *testing.T) {
	// Property: shuffling any slice preserves its multiset of elements.
	f := func(seed uint64, raw []byte) bool {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		vals := append([]byte(nil), raw...)
		counts := make(map[byte]int)
		for _, b := range vals {
			counts[b]++
		}
		NewRNG(seed).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		for _, b := range vals {
			counts[b]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
