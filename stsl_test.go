package stsl_test

import (
	"testing"
	"time"

	stsl "github.com/stsl/stsl"
)

// TestFacadeEndToEnd exercises the whole public API the way a downstream
// user would: generate data, shard it, build a deployment, simulate
// training, evaluate, and run a privacy audit.
func TestFacadeEndToEnd(t *testing.T) {
	gen := stsl.SynthCIFAR{Height: 8, Width: 8, Classes: 4}
	train, err := gen.Generate(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	test, err := gen.Generate(32, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := stsl.PartitionDirichlet(train, 2, 0.5, stsl.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	model := stsl.PaperCNNConfig{
		Height: 8, Width: 8, Filters: []int{4, 8}, Hidden: 16, Classes: 4,
	}
	dep, err := stsl.NewDeployment(stsl.Config{
		Model: model, Cut: 1, Clients: 2, Seed: 4, BatchSize: 8, LR: 0.05,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([]*stsl.Path, 2)
	for i := range paths {
		paths[i], err = stsl.NewSymmetricPath(
			stsl.ConstantLatency{D: time.Millisecond}, 0, stsl.NewRNG(uint64(10+i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	sim, err := stsl.NewSimulation(dep, stsl.SimConfig{Paths: paths, MaxStepsPerClient: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerSteps != 8 {
		t.Fatalf("server steps = %d", res.ServerSteps)
	}
	mean, _, err := dep.EvaluateMean(test)
	if err != nil {
		t.Fatal(err)
	}
	if mean < 0 || mean > 1 {
		t.Fatalf("accuracy %v", mean)
	}

	// Privacy audit through the facade.
	cnn, err := stsl.BuildPaperCNN(model, stsl.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	fig4, err := stsl.RunFig4(cnn, train.Image(0), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig4.Stages) != 3 {
		t.Fatalf("stages = %d", len(fig4.Stages))
	}
}

func TestFacadeExperimentRunners(t *testing.T) {
	scale, err := stsl.ScaleByName("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stsl.RunTableI(scale, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := stsl.RunFig3Experiment(stsl.PaperCNNConfig{}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	gen := stsl.SynthCIFAR{Height: 8, Width: 8, Classes: 4}
	train, err := gen.Generate(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	model := stsl.PaperCNNConfig{Height: 8, Width: 8, Filters: []int{4}, Hidden: 8, Classes: 4}
	res, err := stsl.TrainCentralized(stsl.TrainConfig{Model: model, Seed: 1, Epochs: 1, BatchSize: 16}, train)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stsl.EvaluateModel(res.Model, train); err != nil {
		t.Fatal(err)
	}
	shards, err := stsl.PartitionIID(train, 2, stsl.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stsl.TrainFedAvg(stsl.FedAvgConfig{Model: model, Seed: 1, Rounds: 1, BatchSize: 16}, shards); err != nil {
		t.Fatal(err)
	}
}
